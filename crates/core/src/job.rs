//! One-call orchestration: the whole §2 instance-integration story —
//! validate the knowledge, identify entities, verify soundness,
//! build the integrated table, resolve attribute conflicts — as a
//! single [`IntegrationJob`] producing a single [`IntegrationReport`].
//!
//! This is the API a downstream integrator actually calls; the
//! individual stages remain available for fine-grained use.

use std::fmt;
use std::sync::Arc;

use eid_relational::Relation;

use crate::conflict::{unify, ConflictPolicy, Unified};
use crate::error::Result;
use crate::integrate::IntegratedTable;
use crate::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use crate::partition::Partition;
use crate::plan::MatchPlan;
use crate::store::Dataset;
use crate::validate::{validate_knowledge, KnowledgeReport};

/// Configuration of a full integration run.
#[derive(Debug, Clone)]
pub struct IntegrationJob {
    /// The matching configuration (extended key, ILFDs, rules…).
    pub config: MatchConfig,
    /// Conflict policy for the unified relation.
    pub policy: ConflictPolicy,
    /// Whether to abort (error) when the §3.2 post-match verification
    /// fails, instead of reporting and continuing (the prototype
    /// warns and continues; production integration usually aborts).
    pub strict: bool,
}

impl IntegrationJob {
    /// A job with the given matching configuration, NULL conflict
    /// policy, and non-strict verification.
    pub fn new(config: MatchConfig) -> Self {
        IntegrationJob {
            config,
            policy: ConflictPolicy::Null,
            strict: false,
        }
    }

    /// The match plan the job's matcher would execute for `r` and
    /// `s`, without running it — the relations are extended and
    /// encoded so the planner can read column statistics, but no
    /// probing happens. This is the payload behind `eid plan`.
    pub fn plan(&self, r: &Relation, s: &Relation) -> Result<std::sync::Arc<MatchPlan>> {
        EntityMatcher::new(r.clone(), s.clone(), self.config.clone())?.plan()
    }

    /// [`IntegrationJob::plan`] against an encoded [`Dataset`]: no
    /// derivation or interning happens, and a persistent dataset's
    /// plan reads the *persisted* column statistics (`stats:
    /// persisted` in `eid plan --explain`).
    pub fn plan_dataset(&self, dataset: Arc<Dataset>) -> Result<std::sync::Arc<MatchPlan>> {
        EntityMatcher::from_dataset(dataset, self.config.clone())?.plan()
    }

    /// Runs the full pipeline.
    pub fn run(&self, r: &Relation, s: &Relation) -> Result<IntegrationReport> {
        let matcher = EntityMatcher::new(r.clone(), s.clone(), self.config.clone())?;
        self.run_with(r, s, matcher)
    }

    /// [`IntegrationJob::run`] against an encoded [`Dataset`] — the
    /// store-backed path behind `eid match --store`. The matcher
    /// adopts the dataset's extension, interner, columns, and
    /// statistics; validation, integration, and unification run on
    /// the original relations it carries.
    pub fn run_dataset(&self, dataset: Arc<Dataset>) -> Result<IntegrationReport> {
        let matcher = EntityMatcher::from_dataset(Arc::clone(&dataset), self.config.clone())?;
        self.run_with(dataset.r()?, dataset.s()?, matcher)
    }

    fn run_with(
        &self,
        r: &Relation,
        s: &Relation,
        matcher: EntityMatcher,
    ) -> Result<IntegrationReport> {
        // 1. §3.2 necessary checks.
        let knowledge = validate_knowledge(r, s, &self.config)?;

        // 2. Entity identification.
        let outcome = matcher.run()?;

        // 3. §3.2 sufficient checks.
        let verification = outcome.verify().err().map(|e| e.to_string());
        if self.strict {
            outcome.verify()?;
        }

        // 4. Integrated table + unified relation.
        let integrated = IntegratedTable::build(r, s, &outcome, &self.config.extended_key)?;
        let unified = unify(r, s, &outcome, self.policy)?;

        let partition = Partition::of(&outcome);
        Ok(IntegrationReport {
            knowledge,
            partition,
            verification,
            outcome,
            integrated,
            unified,
        })
    }
}

/// Everything a full integration run produced.
#[derive(Debug, Clone)]
pub struct IntegrationReport {
    /// Pre-match knowledge diagnostics.
    pub knowledge: KnowledgeReport,
    /// The Figure-3 partition.
    pub partition: Partition,
    /// `None` if the §3.2 verification passed, else the failure text.
    pub verification: Option<String>,
    /// The raw matching outcome (tables, extended relations).
    pub outcome: MatchOutcome,
    /// The integrated table `T_RS`.
    pub integrated: IntegratedTable,
    /// The unified one-row-per-entity relation + conflicts.
    pub unified: Unified,
}

impl IntegrationReport {
    /// Whether the run is fully healthy: clean knowledge, verified
    /// matching, no unresolved conflicts.
    pub fn is_healthy(&self) -> bool {
        self.knowledge.is_clean()
            && self.verification.is_none()
            && self.unified.conflicts.is_empty()
    }
}

impl fmt::Display for IntegrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "integration report")?;
        writeln!(
            f,
            "  knowledge: {} ILFD violations, {} intra-relation key duplicates",
            self.knowledge.ilfd_violations.len(),
            self.knowledge.key_duplicates.len()
        )?;
        writeln!(f, "  pairs: {}", self.partition)?;
        match &self.verification {
            None => writeln!(f, "  verification: passed (sound)")?,
            Some(e) => writeln!(f, "  verification: FAILED — {e}")?,
        }
        writeln!(f, "  integrated table: {} rows", self.integrated.len())?;
        writeln!(
            f,
            "  unified relation: {} rows, {} attribute conflicts",
            self.unified.relation.len(),
            self.unified.conflicts.len()
        )?;
        write!(f, "  healthy: {}", self.is_healthy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::{Ilfd, IlfdSet};
    use eid_relational::{Schema, Tuple};
    use eid_rules::ExtendedKey;

    fn workload() -> (Relation, Relation, MatchConfig) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "city"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["tc", "chinese", "mpls"]).unwrap();
        r.insert_strs(&["vw", "chinese", "mpls"]).unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "city"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["tc", "hunan", "st_paul"]).unwrap(); // city conflict

        let ilfds: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        (
            r,
            s,
            MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds),
        )
    }

    #[test]
    fn full_run_produces_all_artifacts() {
        let (r, s, config) = workload();
        let report = IntegrationJob::new(config).run(&r, &s).unwrap();
        assert!(report.knowledge.is_clean());
        assert!(report.verification.is_none());
        assert_eq!(report.partition.matching, 1);
        assert_eq!(report.integrated.len(), 2); // 1 merged + 1 R-only
        assert_eq!(report.unified.relation.len(), 2);
        assert_eq!(report.unified.conflicts.len(), 1); // the city
        assert!(!report.is_healthy()); // conflict present
        let text = report.to_string();
        assert!(text.contains("verification: passed"));
        assert!(text.contains("1 attribute conflicts"));
    }

    #[test]
    fn plan_is_available_without_running() {
        let (r, s, config) = workload();
        let plan = IntegrationJob::new(config).plan(&r, &s).unwrap();
        assert!(plan.probe_nodes().count() >= 1);
        assert!(plan.record_identity && plan.record_distinct);
    }

    #[test]
    fn strict_mode_aborts_on_unsound_key() {
        let (r, s, mut config) = workload();
        config.extended_key = ExtendedKey::of_strs(&["city"]); // not a key
        let mut job = IntegrationJob::new(config);
        job.strict = true;
        // Both R tuples share city=mpls → the single S tuple could
        // never be disambiguated; with city as the key, R's two mpls
        // tuples collide in validate… but run() should fail at verify
        // or report duplicates. Either way strict mode errors or
        // reports non-clean knowledge.
        match job.run(&r, &s) {
            Err(_) => {}
            Ok(report) => assert!(!report.is_healthy()),
        }
    }

    #[test]
    fn policy_controls_conflict_resolution() {
        let (r, s, config) = workload();
        let mut job = IntegrationJob::new(config);
        job.policy = ConflictPolicy::PreferS;
        let report = job.run(&r, &s).unwrap();
        let schema = report.unified.relation.schema().clone();
        let city = eid_relational::AttrName::new("city");
        let merged = report
            .unified
            .relation
            .iter()
            .find(|t| t.get(0) == &eid_relational::Value::str("tc"))
            .unwrap();
        assert_eq!(
            merged.value_of(&schema, &city),
            Some(&eid_relational::Value::str("st_paul"))
        );
    }

    #[test]
    fn healthy_run() {
        let (_, s, config) = workload();
        // Remove the conflicting R tuple's city difference by using a
        // fresh R that agrees.
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "city"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert(Tuple::of_strs(&["tc", "chinese", "st_paul"]))
            .unwrap();
        let report = IntegrationJob::new(config).run(&r, &s).unwrap();
        assert!(report.is_healthy(), "{report}");
    }
}
