//! The hardened matching runtime: cooperative cancellation,
//! wall-clock deadlines, and resource budgets.
//!
//! The paper's setting is integration of *autonomous* databases —
//! sources the integrator does not control, feeding data of unknown
//! size and quality. A production engine therefore needs runs that
//! are **bounded** (a runaway pair explosion trips a budget instead
//! of exhausting memory), **interruptible** (a caller can cancel and
//! get a typed error with partial statistics), and
//! **degrade-gracefully** (a poisoned worker falls back down the
//! `blocked_parallel → blocked → nested-loop` ladder — expressed
//! since the plan-IR refactor as match-plan rewrites: the parallel
//! plan's serial twin, then its index-free twin — instead of taking
//! the process down; see `DESIGN.md` §9–10).
//!
//! The contract is cooperative: the engine, matcher, and incremental
//! matcher call [`RunGuard::checkpoint`] at *chunk boundaries* (task
//! starts, outer-loop rows, stage transitions), never inside the pair
//! loop. A tripped guard surfaces as
//! [`CoreError::Aborted`](crate::CoreError::Aborted) carrying the
//! [`AbortReason`] and a [`PartialStats`] snapshot. Aborts never
//! leave half-applied state: the incremental matcher stages every
//! event and commits only on success (§3.3 monotonicity is preserved
//! across a cancel-then-resume), and an aborted engine run never
//! flushes a half-task into the recorder.
//!
//! An unlimited guard's checkpoint is two relaxed atomic loads — the
//! fault-free fast path costs nothing measurable.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resource limits for one matching run. `None` everywhere (the
/// [`Default`]) means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline in milliseconds from guard creation.
    pub timeout_ms: Option<u64>,
    /// Maximum candidate pairs the run may visit (engine tasks are
    /// pre-charged with their exact candidate weight, so the trip
    /// happens *before* the work, not after).
    pub max_candidate_pairs: Option<u64>,
    /// Maximum resident pair-list bytes (raw engine output before
    /// dedup, 8 bytes per `(u32, u32)` pair). Also caps the blocked
    /// index: when the estimated index footprint alone exceeds this,
    /// the executor rewrites the plan index-free (the nested-loop
    /// arm) rather than building indexes it cannot afford.
    pub max_pair_bytes: Option<u64>,
}

impl RunBudget {
    /// The unlimited budget.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Whether every limit is absent.
    pub fn is_unlimited(&self) -> bool {
        self.timeout_ms.is_none()
            && self.max_candidate_pairs.is_none()
            && self.max_pair_bytes.is_none()
    }
}

/// Why a run was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// The caller cancelled via [`RunGuard::cancel`].
    Cancelled,
    /// The wall-clock deadline expired.
    DeadlineExceeded {
        /// The configured timeout.
        timeout_ms: u64,
    },
    /// The candidate-pair budget was exceeded.
    PairBudgetExceeded {
        /// The configured limit.
        limit: u64,
        /// Pairs charged when the trip was detected.
        observed: u64,
    },
    /// The pair-list / index memory budget was exceeded.
    MemBudgetExceeded {
        /// The configured limit in bytes.
        limit: u64,
        /// Bytes charged (or estimated) when the trip was detected.
        observed: u64,
    },
}

impl AbortReason {
    /// A short machine-readable code for labels and exit-code
    /// mapping: `cancelled`, `deadline`, `max_pairs`, or `max_mem`.
    pub fn code(&self) -> &'static str {
        match self {
            AbortReason::Cancelled => "cancelled",
            AbortReason::DeadlineExceeded { .. } => "deadline",
            AbortReason::PairBudgetExceeded { .. } => "max_pairs",
            AbortReason::MemBudgetExceeded { .. } => "max_mem",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Cancelled => write!(f, "cancelled by caller"),
            AbortReason::DeadlineExceeded { timeout_ms } => {
                write!(f, "deadline exceeded ({timeout_ms} ms)")
            }
            AbortReason::PairBudgetExceeded { limit, observed } => {
                write!(f, "candidate-pair budget exceeded ({observed} > {limit})")
            }
            AbortReason::MemBudgetExceeded { limit, observed } => {
                write!(f, "memory budget exceeded ({observed} > {limit} bytes)")
            }
        }
    }
}

/// What an aborted run had accomplished when it tripped — enough to
/// size a retry budget or report progress, *not* a usable result (an
/// aborted run returns no tables; §3.3 forbids publishing partial
/// decisions that a resumed run might not reproduce).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartialStats {
    /// Wall milliseconds from guard creation to the trip.
    pub elapsed_ms: u64,
    /// Candidate pairs charged so far.
    pub pairs_charged: u64,
    /// Pair-list bytes charged so far.
    pub bytes_charged: u64,
    /// Engine tasks that had completed.
    pub tasks_completed: u64,
    /// Engine tasks planned in total (0 when the run aborted before
    /// planning).
    pub tasks_total: u64,
    /// Matching pairs found before the trip (discarded, not
    /// published).
    pub matching: u64,
    /// Refuted pairs found before the trip (discarded).
    pub negative: u64,
}

impl fmt::Display for PartialStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ms elapsed, {} pairs charged, {}/{} tasks, {} matching / {} negative discarded",
            self.elapsed_ms,
            self.pairs_charged,
            self.tasks_completed,
            self.tasks_total,
            self.matching,
            self.negative
        )
    }
}

#[derive(Debug)]
struct GuardInner {
    cancelled: AtomicBool,
    /// Fast-path flag mirroring `reason`'s occupancy.
    tripped: AtomicBool,
    reason: Mutex<Option<AbortReason>>,
    started: Instant,
    deadline: Option<Instant>,
    timeout_ms: Option<u64>,
    pairs: AtomicU64,
    bytes: AtomicU64,
    max_pairs: Option<u64>,
    max_bytes: Option<u64>,
    /// Whether any limit exists at all (skips the limit checks on the
    /// unlimited fast path).
    limited: bool,
}

/// A cooperative cancellation token + budget meter, shared by every
/// stage of one run. Clones share state ([`Arc`] inside), so the
/// guard can be handed to the engine, kept by the caller for
/// [`RunGuard::cancel`], and polled from worker drain loops.
#[derive(Debug, Clone)]
pub struct RunGuard {
    inner: Arc<GuardInner>,
}

impl Default for RunGuard {
    fn default() -> Self {
        RunGuard::unlimited()
    }
}

impl RunGuard {
    /// A guard with no limits: checkpoints only observe
    /// [`RunGuard::cancel`].
    pub fn unlimited() -> RunGuard {
        RunGuard::new(&RunBudget::unlimited())
    }

    /// A guard enforcing `budget`, with the deadline armed now.
    pub fn new(budget: &RunBudget) -> RunGuard {
        let started = Instant::now();
        RunGuard {
            inner: Arc::new(GuardInner {
                cancelled: AtomicBool::new(false),
                tripped: AtomicBool::new(false),
                reason: Mutex::new(None),
                started,
                deadline: budget
                    .timeout_ms
                    .map(|ms| started + Duration::from_millis(ms)),
                timeout_ms: budget.timeout_ms,
                pairs: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                max_pairs: budget.max_candidate_pairs,
                max_bytes: budget.max_pair_bytes,
                limited: !budget.is_unlimited(),
            }),
        }
    }

    /// Requests cancellation; the next checkpoint trips with
    /// [`AbortReason::Cancelled`]. Safe from any thread.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Records `reason` as this run's abort cause (first trip wins)
    /// and returns the winning reason.
    pub fn trip(&self, reason: AbortReason) -> AbortReason {
        let mut slot = self.inner.reason.lock().unwrap_or_else(|e| e.into_inner());
        let winner = slot.get_or_insert(reason).clone();
        self.inner.tripped.store(true, Ordering::Release);
        winner
    }

    /// Whether the guard has tripped (cheap: one atomic load).
    pub fn is_tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Acquire)
    }

    /// The abort reason, if the guard has tripped.
    pub fn tripped_reason(&self) -> Option<AbortReason> {
        if !self.is_tripped() {
            return None;
        }
        self.inner
            .reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Charges `n` candidate pairs against the budget. Checked at the
    /// next [`RunGuard::checkpoint`].
    pub fn charge_pairs(&self, n: u64) {
        self.inner.pairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` resident pair-list bytes against the budget.
    pub fn charge_bytes(&self, n: u64) {
        self.inner.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns `n` bytes to the budget — the spill path's accounting
    /// twin of [`RunGuard::charge_bytes`]: shard bytes flushed to
    /// disk are no longer resident, so `--max-mem-mb` measures what
    /// is actually in memory and spilling *prevents* the trip instead
    /// of merely delaying it. Saturates at zero.
    pub fn uncharge_bytes(&self, n: u64) {
        let bytes = &self.inner.bytes;
        let mut cur = bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match bytes.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Candidate pairs charged so far.
    pub fn pairs_charged(&self) -> u64 {
        self.inner.pairs.load(Ordering::Relaxed)
    }

    /// Pair-list bytes charged so far.
    pub fn bytes_charged(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// The memory limit in bytes, if one is set (the engine consults
    /// this before building blocked indexes).
    pub fn mem_limit(&self) -> Option<u64> {
        self.inner.max_bytes
    }

    /// Wall milliseconds since the guard was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.inner
            .started
            .elapsed()
            .as_millis()
            .min(u64::MAX as u128) as u64
    }

    /// The cooperative cancellation point. Returns `Err` with the
    /// abort reason when the run must stop: already tripped,
    /// cancelled, past the deadline, or over a budget. Unlimited,
    /// uncancelled guards take the two-atomic-load fast path.
    pub fn checkpoint(&self) -> Result<(), AbortReason> {
        if self.is_tripped() {
            // Already tripped — repeat the canonical reason.
            return Err(self.tripped_reason().unwrap_or(AbortReason::Cancelled));
        }
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(self.trip(AbortReason::Cancelled));
        }
        // Fault hook for budget-trip *timing* tests: `budget@k` trips
        // the memory budget at exactly the k-th checkpoint of the
        // process, wherever that lands in the pipeline. Compiled out
        // of release builds along with the rest of eid-fault.
        if eid_fault::ENABLED && eid_fault::hit("runtime/budget") {
            return Err(self.trip(AbortReason::MemBudgetExceeded {
                limit: self.inner.max_bytes.unwrap_or(0),
                observed: self.bytes_charged().max(1),
            }));
        }
        if !self.inner.limited {
            return Ok(());
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(AbortReason::DeadlineExceeded {
                    timeout_ms: self.inner.timeout_ms.unwrap_or(0),
                }));
            }
        }
        if let Some(limit) = self.inner.max_pairs {
            let observed = self.pairs_charged();
            if observed > limit {
                return Err(self.trip(AbortReason::PairBudgetExceeded { limit, observed }));
            }
        }
        if let Some(limit) = self.inner.max_bytes {
            let observed = self.bytes_charged();
            if observed > limit {
                return Err(self.trip(AbortReason::MemBudgetExceeded { limit, observed }));
            }
        }
        Ok(())
    }

    /// A [`PartialStats`] snapshot of this guard's meters; the caller
    /// fills in the task/table fields it knows.
    pub fn partial_stats(&self) -> PartialStats {
        PartialStats {
            elapsed_ms: self.elapsed_ms(),
            pairs_charged: self.pairs_charged(),
            bytes_charged: self.bytes_charged(),
            ..PartialStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = RunGuard::unlimited();
        g.charge_pairs(u64::MAX / 2);
        g.charge_bytes(u64::MAX / 2);
        assert!(g.checkpoint().is_ok());
        assert!(!g.is_tripped());
    }

    #[test]
    fn cancel_trips_the_next_checkpoint_from_any_clone() {
        let g = RunGuard::unlimited();
        let h = g.clone();
        h.cancel();
        assert_eq!(g.checkpoint(), Err(AbortReason::Cancelled));
        assert!(g.is_tripped());
        // Subsequent checkpoints repeat the same reason.
        assert_eq!(g.checkpoint(), Err(AbortReason::Cancelled));
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let g = RunGuard::new(&RunBudget {
            timeout_ms: Some(0),
            ..RunBudget::default()
        });
        assert!(matches!(
            g.checkpoint(),
            Err(AbortReason::DeadlineExceeded { timeout_ms: 0 })
        ));
    }

    #[test]
    fn pair_budget_trips_after_overcharge() {
        let g = RunGuard::new(&RunBudget {
            max_candidate_pairs: Some(100),
            ..RunBudget::default()
        });
        g.charge_pairs(100);
        assert!(g.checkpoint().is_ok(), "at the limit is fine");
        g.charge_pairs(1);
        assert!(matches!(
            g.checkpoint(),
            Err(AbortReason::PairBudgetExceeded {
                limit: 100,
                observed: 101
            })
        ));
    }

    #[test]
    fn byte_budget_trips() {
        let g = RunGuard::new(&RunBudget {
            max_pair_bytes: Some(64),
            ..RunBudget::default()
        });
        g.charge_bytes(65);
        assert!(matches!(
            g.checkpoint(),
            Err(AbortReason::MemBudgetExceeded { limit: 64, .. })
        ));
    }

    #[test]
    fn uncharge_returns_bytes_and_saturates() {
        let g = RunGuard::new(&RunBudget {
            max_pair_bytes: Some(100),
            ..RunBudget::default()
        });
        g.charge_bytes(90);
        g.uncharge_bytes(50);
        assert_eq!(g.bytes_charged(), 40);
        g.charge_bytes(60);
        assert!(
            g.checkpoint().is_ok(),
            "spill accounting must avert the trip"
        );
        g.uncharge_bytes(10_000);
        assert_eq!(g.bytes_charged(), 0, "uncharge saturates at zero");
    }

    #[test]
    fn first_trip_wins() {
        let g = RunGuard::unlimited();
        let first = g.trip(AbortReason::DeadlineExceeded { timeout_ms: 7 });
        let second = g.trip(AbortReason::Cancelled);
        assert_eq!(first, second);
        assert_eq!(
            g.tripped_reason(),
            Some(AbortReason::DeadlineExceeded { timeout_ms: 7 })
        );
    }

    #[test]
    fn partial_stats_snapshot_meters() {
        let g = RunGuard::unlimited();
        g.charge_pairs(5);
        g.charge_bytes(40);
        let p = g.partial_stats();
        assert_eq!(p.pairs_charged, 5);
        assert_eq!(p.bytes_charged, 40);
        assert_eq!(p.tasks_total, 0);
    }

    #[test]
    fn reasons_display() {
        assert!(AbortReason::Cancelled.to_string().contains("cancelled"));
        let d = AbortReason::DeadlineExceeded { timeout_ms: 9 };
        assert!(d.to_string().contains("9 ms"));
        let p = AbortReason::PairBudgetExceeded {
            limit: 1,
            observed: 2,
        };
        assert!(p.to_string().contains("2 > 1"));
        let m = AbortReason::MemBudgetExceeded {
            limit: 3,
            observed: 4,
        };
        assert!(m.to_string().contains("bytes"));
        let s = PartialStats::default().to_string();
        assert!(s.contains("0/0 tasks"));
    }
}
