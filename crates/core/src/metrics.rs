//! Soundness and completeness metrics against a ground truth (§3.2).
//!
//! The paper defines *soundness* ("each record pair declared to be
//! matching (not matching) indeed models the same (distinct)
//! real-world entity") and *completeness* ("the process returns
//! matching or not matching, but not undetermined, for all pairs").
//! With synthetic workloads we know the true correspondence, so both
//! properties are measurable; the baseline comparison experiments
//! (S3) report these numbers per technique.

use std::collections::HashSet;

use eid_relational::Tuple;

use crate::match_table::PairTable;

/// The true correspondence between `R` and `S` tuples, as key-value
/// pairs — the conceptual `MT_RS` of §3.2 (everything not in it is
/// conceptually in `NMT_RS`).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pairs: HashSet<(Tuple, Tuple)>,
}

impl GroundTruth {
    /// An empty ground truth (no true matches).
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Registers a true match between key values.
    pub fn add(&mut self, r_key: Tuple, s_key: Tuple) {
        self.pairs.insert((r_key, s_key));
    }

    /// Whether `(r_key, s_key)` is a true match.
    pub fn is_match(&self, r_key: &Tuple, s_key: &Tuple) -> bool {
        self.pairs.contains(&(r_key.clone(), s_key.clone()))
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no true matches.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the true pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Tuple, Tuple)> {
        self.pairs.iter()
    }
}

/// Quality of one technique's declared tables against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Declared matches that are true matches.
    pub true_matches: usize,
    /// Declared matches that are *not* true matches (soundness
    /// violations on the positive side).
    pub false_matches: usize,
    /// Declared non-matches that are actually matches (soundness
    /// violations on the negative side).
    pub false_non_matches: usize,
    /// Declared non-matches that are truly distinct.
    pub true_non_matches: usize,
    /// True matches the technique failed to declare (left
    /// undetermined or wrongly refuted).
    pub missed_matches: usize,
    /// Total candidate pairs (`|R| · |S|`).
    pub total_pairs: usize,
}

impl Evaluation {
    /// Compares declared matching/negative tables against the truth.
    pub fn compute(
        truth: &GroundTruth,
        matching: &PairTable,
        negative: &PairTable,
        total_pairs: usize,
    ) -> Evaluation {
        let mut e = Evaluation {
            true_matches: 0,
            false_matches: 0,
            false_non_matches: 0,
            true_non_matches: 0,
            missed_matches: 0,
            total_pairs,
        };
        for entry in matching.entries() {
            if truth.is_match(&entry.r_key, &entry.s_key) {
                e.true_matches += 1;
            } else {
                e.false_matches += 1;
            }
        }
        for entry in negative.entries() {
            if truth.is_match(&entry.r_key, &entry.s_key) {
                e.false_non_matches += 1;
            } else {
                e.true_non_matches += 1;
            }
        }
        e.missed_matches = truth.len() - e.true_matches;
        e
    }

    /// Whether the result is **sound** (§3.2): no false matches and
    /// no false non-matches.
    pub fn is_sound(&self) -> bool {
        self.false_matches == 0 && self.false_non_matches == 0
    }

    /// Fraction of declared matches that are correct (1.0 when none
    /// declared).
    pub fn match_precision(&self) -> f64 {
        let declared = self.true_matches + self.false_matches;
        if declared == 0 {
            1.0
        } else {
            self.true_matches as f64 / declared as f64
        }
    }

    /// Fraction of true matches found.
    pub fn match_recall(&self) -> f64 {
        let truth = self.true_matches + self.missed_matches;
        if truth == 0 {
            1.0
        } else {
            self.true_matches as f64 / truth as f64
        }
    }

    /// §3.2 completeness: fraction of all pairs decided either way.
    pub fn completeness(&self) -> f64 {
        if self.total_pairs == 0 {
            return 1.0;
        }
        let decided =
            self.true_matches + self.false_matches + self.true_non_matches + self.false_non_matches;
        decided as f64 / self.total_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::AttrName;

    fn key(s: &str) -> Tuple {
        Tuple::of_strs(&[s])
    }

    fn table(pairs: &[(&str, &str)]) -> PairTable {
        let mut t = PairTable::new(vec![AttrName::new("k")], vec![AttrName::new("k")]);
        for (a, b) in pairs {
            t.insert(key(a), key(b));
        }
        t
    }

    fn truth() -> GroundTruth {
        let mut g = GroundTruth::new();
        g.add(key("a"), key("a"));
        g.add(key("b"), key("b"));
        g
    }

    #[test]
    fn perfect_result_is_sound_and_complete() {
        let t = truth();
        let mt = table(&[("a", "a"), ("b", "b")]);
        let nmt = table(&[("a", "b"), ("b", "a")]);
        let e = Evaluation::compute(&t, &mt, &nmt, 4);
        assert!(e.is_sound());
        assert_eq!(e.match_precision(), 1.0);
        assert_eq!(e.match_recall(), 1.0);
        assert_eq!(e.completeness(), 1.0);
    }

    #[test]
    fn false_match_breaks_soundness() {
        let t = truth();
        let mt = table(&[("a", "a"), ("a", "b")]);
        let nmt = table(&[]);
        let e = Evaluation::compute(&t, &mt, &nmt, 4);
        assert!(!e.is_sound());
        assert_eq!(e.false_matches, 1);
        assert!((e.match_precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_refutation_breaks_soundness() {
        let t = truth();
        let mt = table(&[]);
        let nmt = table(&[("a", "a")]); // truly a match
        let e = Evaluation::compute(&t, &mt, &nmt, 4);
        assert!(!e.is_sound());
        assert_eq!(e.false_non_matches, 1);
    }

    #[test]
    fn sound_but_incomplete() {
        let t = truth();
        let mt = table(&[("a", "a")]);
        let nmt = table(&[]);
        let e = Evaluation::compute(&t, &mt, &nmt, 4);
        assert!(e.is_sound());
        assert_eq!(e.missed_matches, 1);
        assert!((e.match_recall() - 0.5).abs() < 1e-12);
        assert!((e.completeness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_everything() {
        let e = Evaluation::compute(&GroundTruth::new(), &table(&[]), &table(&[]), 0);
        assert!(e.is_sound());
        assert_eq!(e.completeness(), 1.0);
        assert_eq!(e.match_recall(), 1.0);
    }
}
