//! Monotonicity of entity identification (§3.3).
//!
//! > An entity-identification technique is monotonic if every pair of
//! > tuples determined by the technique to be matching/not matching
//! > remains so when additional information is supplied.
//!
//! [`KnowledgeSweep`] re-runs the matcher under growing prefixes of
//! an ILFD list and records the Figure-3 partition after each step;
//! [`KnowledgeSweep::verify_monotonic`] checks that the matching and
//! not-matching sets only ever grow. This also regenerates the
//! paper's Figure 3 as a data series (experiment E4).

use eid_ilfd::{Ilfd, IlfdSet};
use eid_relational::Relation;

use crate::error::Result;
use crate::match_table::PairTable;
use crate::matcher::{EntityMatcher, MatchConfig, MatchOutcome};
use crate::partition::Partition;

/// One step of the sweep: how many ILFDs were in force and what the
/// partition looked like.
#[derive(Debug, Clone)]
pub struct SweepStep {
    /// Number of ILFDs supplied so far.
    pub ilfds: usize,
    /// The resulting partition.
    pub partition: Partition,
    /// The matching table at this step.
    pub matching: PairTable,
    /// The negative matching table at this step.
    pub negative: PairTable,
}

/// The result of sweeping knowledge from none to all.
#[derive(Debug, Clone)]
pub struct KnowledgeSweep {
    /// One entry per prefix length `0..=n`.
    pub steps: Vec<SweepStep>,
}

impl KnowledgeSweep {
    /// Runs the matcher under every prefix of `ilfds` (`0..=n` rules),
    /// with the rest of `config` fixed.
    pub fn run(
        r: &Relation,
        s: &Relation,
        config: &MatchConfig,
        ilfds: &[Ilfd],
    ) -> Result<KnowledgeSweep> {
        let mut steps = Vec::with_capacity(ilfds.len() + 1);
        for k in 0..=ilfds.len() {
            let mut c = config.clone();
            c.ilfds = ilfds[..k].iter().cloned().collect::<IlfdSet>();
            let outcome: MatchOutcome = EntityMatcher::new(r.clone(), s.clone(), c)?.run()?;
            steps.push(SweepStep {
                ilfds: k,
                partition: Partition::of(&outcome),
                matching: outcome.matching,
                negative: outcome.negative,
            });
        }
        Ok(KnowledgeSweep { steps })
    }

    /// §3.3: "the sets of matching pairs and non-matching pairs will
    /// expand, whereas the set of undetermined pairs shrinks as more
    /// semantic information becomes available." Returns the index of
    /// the first step that violates this, or `None` if monotonic.
    pub fn verify_monotonic(&self) -> Option<usize> {
        for w in self.steps.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            if !next.matching.includes(&prev.matching) || !next.negative.includes(&prev.negative) {
                return Some(next.ilfds);
            }
        }
        None
    }

    /// The partitions as a printable series (Figure 3's data).
    pub fn series(&self) -> Vec<(usize, Partition)> {
        self.steps.iter().map(|s| (s.ilfds, s.partition)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::Ilfd;
    use eid_relational::Schema;
    use eid_rules::ExtendedKey;

    fn workload() -> (Relation, Relation, MatchConfig, Vec<Ilfd>) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "hunan", "roseville"])
            .unwrap();
        s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
            .unwrap();

        let ilfds = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
        ];
        let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), IlfdSet::new());
        (r, s, config, ilfds)
    }

    #[test]
    fn sweep_grows_matches_and_shrinks_undetermined() {
        let (r, s, config, ilfds) = workload();
        let sweep = KnowledgeSweep::run(&r, &s, &config, &ilfds).unwrap();
        assert_eq!(sweep.steps.len(), 4);
        // No knowledge: nothing decided.
        assert_eq!(sweep.steps[0].partition.matching, 0);
        assert_eq!(sweep.steps[0].partition.undetermined, 9);
        // Full knowledge: all three pairs matched.
        assert_eq!(sweep.steps[3].partition.matching, 3);
        // Undetermined shrinks monotonically.
        for w in sweep.steps.windows(2) {
            assert!(w[1].partition.undetermined <= w[0].partition.undetermined);
        }
    }

    #[test]
    fn sweep_is_monotonic() {
        let (r, s, config, ilfds) = workload();
        let sweep = KnowledgeSweep::run(&r, &s, &config, &ilfds).unwrap();
        assert_eq!(sweep.verify_monotonic(), None);
    }

    #[test]
    fn series_has_one_point_per_prefix() {
        let (r, s, config, ilfds) = workload();
        let sweep = KnowledgeSweep::run(&r, &s, &config, &ilfds).unwrap();
        let series = sweep.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].0, 0);
        assert_eq!(series[3].0, 3);
    }
}
