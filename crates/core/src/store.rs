//! The persistent dataset store — encode a matching world once, open
//! it in milliseconds, match out of the stored columns.
//!
//! A dataset lives in a directory (`<name>.eids/`) of section files
//! (see [`eid_relational::store`] for the framing):
//!
//! | file           | section    | contents                                   |
//! |----------------|------------|--------------------------------------------|
//! | `manifest.eid` | `MANIFEST` | name, key, strategy, rules text, row counts |
//! | `interner.eid` | `INTERNER` | the serialized value interner              |
//! | `r.eid`/`s.eid`| `COLUMNS`  | original relations: schema + symbol columns |
//! | `rx.eid`/`sx.eid`| `COLUMNS`| extended relations (post-ILFD derivation)  |
//! | `stats.eid`    | `STATS`    | per-column distinct/null statistics        |
//! | `index.eid`    | `INDEX`    | optional blocking postings (extended key)  |
//!
//! [`Dataset`] is the pipeline's input abstraction with two backends:
//! [`Dataset::encode`] (in-memory: extend, derive, intern, stat — the
//! classic CSV path) and [`Dataset::open`] (persistent: one bounded
//! pass over the section files, **no re-derivation, no re-interning,
//! no stats recomputation**). A matcher built from either backend
//! classifies identically; the planner additionally reports the stats
//! provenance (`stats: persisted` vs `stats: computed`).
//!
//! Open is a *milliseconds*-scale operation: every section's header
//! and checksum is verified eagerly (byte corruption always fails at
//! open), along with the manifest cross-checks and symbol-column
//! bounds — but the allocation-heavy materializations (interner
//! values, tuple reconstruction, postings lists) are deferred to
//! first access behind fallible accessors, where a semantically
//! inconsistent section still surfaces as a typed
//! [`CoreError::Store`]. [`Dataset::validate`] forces everything for
//! callers that want eager verification.
//!
//! Writing honours the spill-dir conventions from the out-of-core
//! work: sections land in `<name>.eids.tmp` under a
//! [`SpillDirGuard`], and only a fully-written directory is renamed
//! into place — a failed encode never leaks a half-written `.eids/`.
//!
//! Fault sites `store/open`, `store/read`, and `store/write` inject
//! deterministic failures in debug builds (the `eid-fault` plan
//! grammar), and every corruption mode surfaces as
//! [`CoreError::Store`].

use std::fs;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use eid_ilfd::{DeriveReport, DeriveStats, IlfdSet, Strategy};
use eid_relational::store::{
    self as rstore, attr_names, read_section, section, PayloadReader, PayloadWriter, StoreError,
    StoreResult,
};
use eid_relational::Schema;
use eid_relational::{ColumnStat, Columns, Interner, Relation, Sym};
use eid_rules::parser::{ilfds_to_source, parse_rules};
use eid_rules::ExtendedKey;

use crate::error::{CoreError, Result};
use crate::extend::{extend_relation, Extended};
use crate::matcher::MatchConfig;
use crate::sink::SpillDirGuard;

/// Conventional extension of a dataset directory.
pub const DATASET_EXT: &str = "eids";

/// Manifest section file.
pub const MANIFEST_FILE: &str = "manifest.eid";
/// Interner section file.
pub const INTERNER_FILE: &str = "interner.eid";
/// Original `R` columns file.
pub const COLS_R_FILE: &str = "r.eid";
/// Original `S` columns file.
pub const COLS_S_FILE: &str = "s.eid";
/// Extended `R′` columns file.
pub const COLS_RX_FILE: &str = "rx.eid";
/// Extended `S′` columns file.
pub const COLS_SX_FILE: &str = "sx.eid";
/// Column-statistics file.
pub const STATS_FILE: &str = "stats.eid";
/// Optional blocking-index file.
pub const INDEX_FILE: &str = "index.eid";

/// Every required section file with its expected kind, in open order
/// (the corruption test matrix iterates this).
pub const REQUIRED_FILES: [(&str, u32); 7] = [
    (MANIFEST_FILE, section::MANIFEST),
    (INTERNER_FILE, section::INTERNER),
    (COLS_R_FILE, section::COLUMNS),
    (COLS_S_FILE, section::COLUMNS),
    (COLS_RX_FILE, section::COLUMNS),
    (COLS_SX_FILE, section::COLUMNS),
    (STATS_FILE, section::STATS),
];

fn store_err(path: impl std::fmt::Display, reason: impl Into<String>) -> CoreError {
    CoreError::Store {
        path: path.to_string(),
        reason: reason.into(),
    }
}

/// Reads one section file, with the `store/read` fault site armed in
/// debug builds.
fn read(path: &Path, kind: u32) -> Result<PayloadReader> {
    if eid_fault::hit("store/read") {
        return Err(store_err(path.display(), "injected fault: store/read"));
    }
    Ok(read_section(path, kind)?)
}

/// Writes one section file, with the `store/write` fault site armed
/// in debug builds.
fn write(path: &Path, kind: u32, payload: &[u8]) -> Result<()> {
    if eid_fault::hit("store/write") {
        return Err(store_err(path.display(), "injected fault: store/write"));
    }
    rstore::write_section(path, kind, payload)?;
    Ok(())
}

/// One side's serialized blocking postings: `(column position,
/// symbol → ascending rows)` per extended-key column.
pub type SidePostings = Vec<(usize, Vec<(Sym, Vec<u32>)>)>;

/// Optional pre-built blocking postings for both extended relations —
/// written at encode time so an index-aware fast path never has to
/// re-bucket (the current executor still builds its own `SymIndex`es;
/// the section exists so adopting them is a read, not a format
/// change).
#[derive(Debug, Clone, Default)]
pub struct BlockIndex {
    /// Postings over `R′`'s extended-key columns.
    pub r: SidePostings,
    /// Postings over `S′`'s extended-key columns.
    pub s: SidePostings,
}

/// A checksum-validated section payload whose field-level decode is
/// deferred: [`Dataset::open`] verifies every file's header and
/// checksum eagerly (corruption of bytes always fails at open) but
/// leaves the expensive materializations — interner values, tuple
/// reconstruction, postings lists — to first access, which is what
/// makes open a milliseconds-scale operation.
#[derive(Debug)]
struct RawSection {
    data: Vec<u8>,
    path: String,
}

impl RawSection {
    fn of(reader: PayloadReader) -> RawSection {
        let (data, _, path) = reader.into_parts();
        RawSection { data, path }
    }

    fn reader(&self) -> PayloadReader {
        PayloadReader::new(self.data.clone(), self.path.clone())
    }
}

/// A dataset component that is either materialized (the in-memory
/// encode backend) or built on first access from persisted bytes (the
/// open backend). Deferred builds memoize their outcome — including a
/// typed [`StoreError`] on semantic corruption, so a crafted store
/// that passes checksums still fails loudly, just at first use
/// instead of at open.
#[derive(Debug)]
enum Lazy<T> {
    Ready(T),
    Deferred(OnceLock<StoreResult<T>>),
}

impl<T> Lazy<T> {
    fn deferred() -> Lazy<T> {
        Lazy::Deferred(OnceLock::new())
    }

    fn get(&self, build: impl FnOnce() -> StoreResult<T>) -> StoreResult<&T> {
        match self {
            Lazy::Ready(v) => Ok(v),
            Lazy::Deferred(cell) => cell.get_or_init(build).as_ref().map_err(Clone::clone),
        }
    }
}

/// A matching world the pipeline runs against: both relations, their
/// ILFD-extended twins, the shared interner, the extended-side symbol
/// columns, per-column statistics, and the rule knowledge (extended
/// key + ILFD source). Built by [`Dataset::encode`] (in-memory) or
/// [`Dataset::open`] (from a store directory).
///
/// The relation, interner, and index accessors are fallible: on the
/// open backend they materialize lazily from the checksummed
/// payloads, and a semantically-corrupt section (one deliberately
/// crafted to pass its checksum) surfaces there as
/// [`CoreError::Store`] instead of at open. [`Dataset::validate`]
/// forces every deferred section when eager verification is wanted
/// (`eid inspect` does).
#[derive(Debug)]
pub struct Dataset {
    name: String,
    rows_r: usize,
    rows_s: usize,
    interner_len: usize,
    dstats_r: DeriveStats,
    dstats_s: DeriveStats,
    r: Lazy<Relation>,
    s: Lazy<Relation>,
    ext_r: Lazy<Extended>,
    ext_s: Lazy<Extended>,
    interner: Lazy<Interner>,
    raw_r: Option<RawSection>,
    raw_s: Option<RawSection>,
    raw_interner: Option<RawSection>,
    raw_index: Option<RawSection>,
    ext_schema_r: Arc<Schema>,
    ext_schema_s: Arc<Schema>,
    ext_path_r: String,
    ext_path_s: String,
    cols_r: Columns,
    cols_s: Columns,
    stats_r: Vec<ColumnStat>,
    stats_s: Vec<ColumnStat>,
    extended_key: ExtendedKey,
    strategy: Strategy,
    ilfds: IlfdSet,
    rules_text: String,
    index: Lazy<Option<BlockIndex>>,
    persisted: bool,
}

impl Dataset {
    /// The in-memory backend: extend both relations under the ILFDs,
    /// intern and columnarize the extended sides, and compute column
    /// statistics — everything a matcher needs, ready to run or to
    /// [`Dataset::write`].
    pub fn encode(
        name: impl Into<String>,
        r: Relation,
        s: Relation,
        extended_key: ExtendedKey,
        ilfds: IlfdSet,
        strategy: Strategy,
    ) -> Result<Dataset> {
        if extended_key.is_empty() {
            return Err(CoreError::EmptyExtendedKey);
        }
        let ext_r = extend_relation(&r, &extended_key, &ilfds, strategy)?;
        let ext_s = extend_relation(&s, &extended_key, &ilfds, strategy)?;
        let mut interner = Interner::new();
        let cols_r = Columns::encode(&ext_r.relation, &mut interner);
        let cols_s = Columns::encode(&ext_s.relation, &mut interner);
        let stats_r = cols_r.column_stats();
        let stats_s = cols_s.column_stats();
        let rules_text = ilfds_to_source(&ilfds);
        Ok(Dataset {
            name: name.into(),
            rows_r: r.len(),
            rows_s: s.len(),
            interner_len: interner.len(),
            dstats_r: ext_r.stats,
            dstats_s: ext_s.stats,
            ext_schema_r: ext_r.relation.schema().clone(),
            ext_schema_s: ext_s.relation.schema().clone(),
            ext_path_r: String::new(),
            ext_path_s: String::new(),
            r: Lazy::Ready(r),
            s: Lazy::Ready(s),
            ext_r: Lazy::Ready(ext_r),
            ext_s: Lazy::Ready(ext_s),
            interner: Lazy::Ready(interner),
            raw_r: None,
            raw_s: None,
            raw_interner: None,
            raw_index: None,
            cols_r,
            cols_s,
            stats_r,
            stats_s,
            extended_key,
            strategy,
            ilfds,
            rules_text,
            index: Lazy::Ready(None),
            persisted: false,
        })
    }

    /// The persistent backend: one bounded, checksummed pass over a
    /// store directory. No derivation, interning, or stats
    /// computation happens — the columns, interner, and statistics
    /// come back exactly as written. Any corruption is a typed
    /// [`CoreError::Store`].
    pub fn open(dir: &Path) -> Result<Dataset> {
        let dpath = dir.display().to_string();
        if eid_fault::hit("store/open") {
            return Err(store_err(&dpath, "injected fault: store/open"));
        }
        if !dir.is_dir() {
            return Err(store_err(&dpath, "not a dataset directory"));
        }

        // Manifest: the cross-section expectations everything else is
        // validated against.
        let mpath = dir.join(MANIFEST_FILE);
        let mut m = read(&mpath, section::MANIFEST)?;
        let name = m.get_str()?;
        let strategy = match m.get_u8()? {
            0 => Strategy::FirstMatch,
            1 => Strategy::Fixpoint,
            t => return Err(m.corrupt(format!("unknown strategy tag {t}")).into()),
        };
        let n_key = m.get_count(2, "extended-key attribute")?;
        if n_key == 0 {
            return Err(m.corrupt("empty extended key").into());
        }
        let mut key_names = Vec::with_capacity(n_key);
        for _ in 0..n_key {
            key_names.push(m.get_str()?);
        }
        let rules_text = m.get_str()?;
        let rows_r = m.get_u64()? as usize;
        let rows_s = m.get_u64()? as usize;
        let interner_len = m.get_u64()? as usize;
        fn derive_stats(m: &mut PayloadReader) -> Result<DeriveStats> {
            Ok(DeriveStats {
                tuples: m.get_u64()? as usize,
                memo_hits: m.get_u64()? as usize,
                memo_misses: m.get_u64()? as usize,
                assigned: m.get_u64()? as usize,
            })
        }
        let dstats_r = derive_stats(&mut m)?;
        let dstats_s = derive_stats(&mut m)?;
        let has_index = m.get_u8()? != 0;
        m.finish().map_err(CoreError::from)?;

        // The interner's values materialize lazily; the payload is
        // checksum-validated here, the population cross-check happens
        // at first access.
        let raw_interner = RawSection::of(read(&dir.join(INTERNER_FILE), section::INTERNER)?);

        // Original relations (`r.eid`/`s.eid`): checksummed now,
        // decoded (schema, columns, tuples, key re-enforcement) on
        // first access.
        let raw_r = RawSection::of(read(&dir.join(COLS_R_FILE), section::COLUMNS)?);
        let raw_s = RawSection::of(read(&dir.join(COLS_S_FILE), section::COLUMNS)?);

        // Extended relations (`rx.eid`/`sx.eid`): the schema and
        // symbol columns decode eagerly — the planner and engine run
        // straight off the columns, and the bulk column reader makes
        // this a bounds-checked memcpy — but *tuple* materialization
        // (one `Value` clone per cell) is deferred.
        let open_cols = |file: &str, rows: usize| -> Result<(Arc<Schema>, Columns, String)> {
            let path = dir.join(file);
            let mut c = read(&path, section::COLUMNS)?;
            let schema = rstore::open_schema(&mut c)?;
            let cols = rstore::open_columns(&mut c, interner_len)?;
            c.finish().map_err(CoreError::from)?;
            let path = path.display().to_string();
            if cols.rows() != rows {
                return Err(store_err(
                    &path,
                    format!(
                        "{} rows stored where the manifest declares {}",
                        cols.rows(),
                        rows
                    ),
                ));
            }
            if cols.arity() != schema.arity() {
                return Err(store_err(
                    &path,
                    format!(
                        "{} columns stored for schema \"{}\" of arity {}",
                        cols.arity(),
                        schema.name(),
                        schema.arity()
                    ),
                ));
            }
            Ok((schema, cols, path))
        };
        let (ext_schema_r, cols_r, ext_path_r) = open_cols(COLS_RX_FILE, rows_r)?;
        let (ext_schema_s, cols_s, ext_path_s) = open_cols(COLS_SX_FILE, rows_s)?;

        let extended_key = ExtendedKey::new(attr_names(&key_names));
        for (schema, path) in [(&ext_schema_r, &ext_path_r), (&ext_schema_s, &ext_path_s)] {
            for attr in extended_key.attrs() {
                if !schema.has_attribute(attr) {
                    return Err(store_err(
                        path,
                        format!(
                            "extended relation \"{}\" is missing extended-key attribute \"{attr}\"",
                            schema.name()
                        ),
                    ));
                }
            }
        }

        let spath = dir.join(STATS_FILE);
        let mut st = read(&spath, section::STATS)?;
        let stats_r = rstore::open_stats(&mut st)?;
        let stats_s = rstore::open_stats(&mut st)?;
        st.finish().map_err(CoreError::from)?;
        for (stats, cols, side) in [(&stats_r, &cols_r, "R′"), (&stats_s, &cols_s, "S′")] {
            if stats.len() != cols.arity() {
                return Err(store_err(
                    spath.display(),
                    format!(
                        "{} column stats stored for {side}'s {} attributes",
                        stats.len(),
                        cols.arity()
                    ),
                ));
            }
            if let Some(bad) = stats.iter().find(|s| s.rows != cols.rows()) {
                return Err(store_err(
                    spath.display(),
                    format!(
                        "{side} stat covers {} rows where the columns hold {}",
                        bad.rows,
                        cols.rows()
                    ),
                ));
            }
        }

        // Postings lists (one `Vec` per distinct symbol) materialize
        // lazily too; the section's bytes are still checksum-verified
        // here. A manifest without an index resolves to `Ready(None)`.
        let (index, raw_index) = if has_index {
            let raw = RawSection::of(read(&dir.join(INDEX_FILE), section::INDEX)?);
            (Lazy::deferred(), Some(raw))
        } else {
            (Lazy::Ready(None), None)
        };

        let ilfds = parse_rules(&rules_text)
            .map_err(|e| store_err(mpath.display(), format!("stored rules do not parse: {e}")))?
            .ilfds();

        Ok(Dataset {
            name,
            rows_r,
            rows_s,
            interner_len,
            dstats_r,
            dstats_s,
            r: Lazy::deferred(),
            s: Lazy::deferred(),
            ext_r: Lazy::deferred(),
            ext_s: Lazy::deferred(),
            interner: Lazy::deferred(),
            raw_r: Some(raw_r),
            raw_s: Some(raw_s),
            raw_interner: Some(raw_interner),
            raw_index,
            ext_schema_r,
            ext_schema_s,
            ext_path_r,
            ext_path_s,
            cols_r,
            cols_s,
            stats_r,
            stats_s,
            extended_key,
            strategy,
            ilfds,
            rules_text,
            index,
            persisted: true,
        })
    }

    /// Serializes the dataset into `dir`. Sections are written to a
    /// sibling `<dir>.tmp` under a [`SpillDirGuard`] and the finished
    /// directory is renamed into place atomically — an encode that
    /// fails (I/O error, injected `store/write` fault, panic) leaves
    /// no half-written `.eids/` behind, only the guard-cleaned temp
    /// dir. An existing dataset at `dir` is replaced. Returns the
    /// total bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64> {
        let dpath = dir.display().to_string();
        let tmp = match dir.file_name() {
            Some(name) => {
                let mut t = name.to_os_string();
                t.push(".tmp");
                dir.with_file_name(t)
            }
            None => return Err(store_err(&dpath, "invalid dataset directory name")),
        };
        if tmp.exists() {
            fs::remove_dir_all(&tmp)
                .map_err(|e| store_err(tmp.display(), format!("stale temp dir: {e}")))?;
        }
        fs::create_dir_all(&tmp).map_err(|e| store_err(tmp.display(), e.to_string()))?;
        let mut guard = SpillDirGuard::adopt(tmp.clone(), false);

        // Writing serializes the materialized world, so every lazy
        // section is forced first (a no-op on the encode backend).
        let (r, s) = (self.r()?, self.s()?);
        let (ext_r, ext_s) = (self.ext_r()?, self.ext_s()?);

        // The stored interner is the dataset interner plus whatever
        // the *original* relations mention that the extended ones
        // don't (nothing, in practice: derivation only fills NULLs) —
        // extended-column symbol ids stay valid either way.
        let mut full = self.interner()?.clone();
        let orig_r = Columns::encode(r, &mut full);
        let orig_s = Columns::encode(s, &mut full);

        let mut manifest = PayloadWriter::new();
        manifest.put_str(&self.name);
        manifest.put_u8(match self.strategy {
            Strategy::FirstMatch => 0,
            Strategy::Fixpoint => 1,
        });
        manifest.put_u64(self.extended_key.attrs().len() as u64);
        for attr in self.extended_key.attrs() {
            manifest.put_str(attr.as_str());
        }
        manifest.put_str(&self.rules_text);
        manifest.put_u64(r.len() as u64);
        manifest.put_u64(s.len() as u64);
        manifest.put_u64(full.len() as u64);
        for stats in [&self.dstats_r, &self.dstats_s] {
            manifest.put_u64(stats.tuples as u64);
            manifest.put_u64(stats.memo_hits as u64);
            manifest.put_u64(stats.memo_misses as u64);
            manifest.put_u64(stats.assigned as u64);
        }
        manifest.put_u8(1); // blocking index present

        let cols_payload = |rel: &Relation, cols: &Columns| -> Vec<u8> {
            let mut b = rstore::schema_payload(rel.schema());
            b.extend(rstore::columns_payload(cols));
            b
        };

        let stats_bytes = {
            let mut b = rstore::stats_payload(&self.stats_r);
            b.extend(rstore::stats_payload(&self.stats_s));
            b
        };

        // Blocking postings over the extended-key columns of both
        // extended sides.
        let mut index = PayloadWriter::new();
        for (rel, cols) in [
            (&ext_r.relation, &self.cols_r),
            (&ext_s.relation, &self.cols_s),
        ] {
            let positions: Vec<usize> = self
                .extended_key
                .attrs()
                .iter()
                .filter_map(|a| rel.schema().try_position(a))
                .collect();
            index.put_u64(positions.len() as u64);
            for p in positions {
                index.put_u64(p as u64);
                for b in rstore::postings_payload(cols.col(p)) {
                    index.put_u8(b);
                }
            }
        }

        let files: Vec<(&str, u32, Vec<u8>)> = vec![
            (MANIFEST_FILE, section::MANIFEST, manifest.into_bytes()),
            (
                INTERNER_FILE,
                section::INTERNER,
                rstore::interner_payload(&full),
            ),
            (COLS_R_FILE, section::COLUMNS, cols_payload(r, &orig_r)),
            (COLS_S_FILE, section::COLUMNS, cols_payload(s, &orig_s)),
            (
                COLS_RX_FILE,
                section::COLUMNS,
                cols_payload(&ext_r.relation, &self.cols_r),
            ),
            (
                COLS_SX_FILE,
                section::COLUMNS,
                cols_payload(&ext_s.relation, &self.cols_s),
            ),
            (STATS_FILE, section::STATS, stats_bytes),
            (INDEX_FILE, section::INDEX, index.into_bytes()),
        ];
        let mut total = 0u64;
        for (file, kind, payload) in files {
            write(&tmp.join(file), kind, &payload)?;
            total += payload.len() as u64 + 32; // header + checksum overhead
        }

        if dir.exists() {
            fs::remove_dir_all(dir)
                .map_err(|e| store_err(&dpath, format!("replacing existing dataset: {e}")))?;
        }
        fs::rename(&tmp, dir).map_err(|e| store_err(&dpath, e.to_string()))?;
        // The temp dir no longer exists; keep the guard from touching
        // the renamed result.
        guard.set_keep(true);
        Ok(total)
    }

    /// The dataset name (from the manifest / encode call).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared value interner (extended-side population), built
    /// from the stored section on first access. A population that
    /// disagrees with the manifest, a duplicate entry, or a stored
    /// NULL is typed corruption.
    fn interner_impl(&self) -> StoreResult<&Interner> {
        self.interner.get(|| {
            let raw = self
                .raw_interner
                .as_ref()
                .expect("deferred interner without its raw section");
            let mut r = raw.reader();
            let it = rstore::open_interner(&mut r)?;
            r.finish()?;
            if it.len() != self.interner_len {
                return Err(StoreError::new(
                    &raw.path,
                    format!(
                        "interner population {} does not match the manifest's {}",
                        it.len(),
                        self.interner_len
                    ),
                ));
            }
            Ok(it)
        })
    }

    /// One original relation (`r.eid`/`s.eid`): schema, columns, and
    /// key-re-enforced tuples, decoded on first access (duplicate
    /// keys in a store are corruption).
    fn original_impl<'a>(
        &'a self,
        slot: &'a Lazy<Relation>,
        raw: &'a Option<RawSection>,
        rows: usize,
    ) -> StoreResult<&'a Relation> {
        slot.get(|| {
            let raw = raw
                .as_ref()
                .expect("deferred original relation without its raw section");
            let mut c = raw.reader();
            let schema = rstore::open_schema(&mut c)?;
            let cols = rstore::open_columns(&mut c, self.interner_len)?;
            c.finish()?;
            if cols.rows() != rows {
                return Err(StoreError::new(
                    &raw.path,
                    format!(
                        "{} rows stored where the manifest declares {}",
                        cols.rows(),
                        rows
                    ),
                ));
            }
            rstore::decode_relation(schema, &cols, self.interner_impl()?, true, &raw.path)
        })
    }

    /// One extended relation: tuples materialized from the (already
    /// validated) symbol columns through the interner.
    fn extended_impl<'a>(
        &'a self,
        slot: &'a Lazy<Extended>,
        schema: &Arc<Schema>,
        cols: &Columns,
        path: &str,
        rows: usize,
        stats: DeriveStats,
    ) -> StoreResult<&'a Extended> {
        slot.get(|| {
            let relation =
                rstore::decode_relation(schema.clone(), cols, self.interner_impl()?, false, path)?;
            Ok(Extended {
                relation,
                reports: vec![DeriveReport::default(); rows],
                stats,
            })
        })
    }

    /// Original relation `R`.
    pub fn r(&self) -> Result<&Relation> {
        Ok(self.original_impl(&self.r, &self.raw_r, self.rows_r)?)
    }

    /// Original relation `S`.
    pub fn s(&self) -> Result<&Relation> {
        Ok(self.original_impl(&self.s, &self.raw_s, self.rows_s)?)
    }

    /// Extended relation `R′` with derivation stats.
    pub fn ext_r(&self) -> Result<&Extended> {
        Ok(self.extended_impl(
            &self.ext_r,
            &self.ext_schema_r,
            &self.cols_r,
            &self.ext_path_r,
            self.rows_r,
            self.dstats_r,
        )?)
    }

    /// Extended relation `S′` with derivation stats.
    pub fn ext_s(&self) -> Result<&Extended> {
        Ok(self.extended_impl(
            &self.ext_s,
            &self.ext_schema_s,
            &self.cols_s,
            &self.ext_path_s,
            self.rows_s,
            self.dstats_s,
        )?)
    }

    /// The shared value interner (extended-side population).
    pub fn interner(&self) -> Result<&Interner> {
        Ok(self.interner_impl()?)
    }

    /// Forces every deferred section — interner, both original and
    /// both extended relations, the blocking index — surfacing any
    /// deferred corruption now. `eid inspect` calls this so
    /// inspection doubles as full verification.
    pub fn validate(&self) -> Result<()> {
        self.interner()?;
        self.r()?;
        self.s()?;
        self.ext_r()?;
        self.ext_s()?;
        self.index()?;
        Ok(())
    }

    /// `R′`'s symbol columns.
    pub fn cols_r(&self) -> &Columns {
        &self.cols_r
    }

    /// `S′`'s symbol columns.
    pub fn cols_s(&self) -> &Columns {
        &self.cols_s
    }

    /// Per-column statistics of `R′` (persisted or computed at
    /// encode).
    pub fn stats_r(&self) -> &[ColumnStat] {
        &self.stats_r
    }

    /// Per-column statistics of `S′`.
    pub fn stats_s(&self) -> &[ColumnStat] {
        &self.stats_s
    }

    /// The extended key.
    pub fn extended_key(&self) -> &ExtendedKey {
        &self.extended_key
    }

    /// The derivation strategy the extended relations were built
    /// under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The ILFD set (parsed back from the stored rules text on open).
    pub fn ilfds(&self) -> &IlfdSet {
        &self.ilfds
    }

    /// The rules source text stored verbatim in the manifest.
    pub fn rules_text(&self) -> &str {
        &self.rules_text
    }

    /// The optional pre-built blocking postings, decoded from the
    /// stored section on first access.
    pub fn index(&self) -> Result<Option<&BlockIndex>> {
        let index = self.index.get(|| {
            let raw = self
                .raw_index
                .as_ref()
                .expect("deferred index without its raw section");
            let mut x = raw.reader();
            let mut open_side = |cols: &Columns| -> StoreResult<SidePostings> {
                let n = x.get_count(12, "indexed column")?;
                let mut side = Vec::with_capacity(n);
                for _ in 0..n {
                    let pos = x.get_u64()? as usize;
                    if pos >= cols.arity() {
                        return Err(x.corrupt(format!("indexed column {pos} out of range")));
                    }
                    let postings = rstore::open_postings(&mut x, cols.rows())?;
                    side.push((pos, postings));
                }
                Ok(side)
            };
            let r_side = open_side(&self.cols_r)?;
            let s_side = open_side(&self.cols_s)?;
            x.finish()?;
            Ok(Some(BlockIndex {
                r: r_side,
                s: s_side,
            }))
        })?;
        Ok(index.as_ref())
    }

    /// Whether this dataset came from a store directory
    /// ([`Dataset::open`]) rather than an in-memory encode — drives
    /// the planner's `stats: persisted` provenance.
    pub fn persisted(&self) -> bool {
        self.persisted
    }

    /// The default matcher configuration for this dataset: its
    /// extended key, ILFDs, and derivation strategy. Callers adjust
    /// budgets, threads, and emission on the result.
    pub fn match_config(&self) -> MatchConfig {
        let mut config = MatchConfig::new(self.extended_key.clone(), self.ilfds.clone());
        config.strategy = self.strategy;
        config
    }
}

/// One store file's on-disk size, for `eid inspect` and the bench's
/// `store` section.
#[derive(Debug, Clone)]
pub struct StoreFile {
    /// File name within the dataset directory.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Sizes of every section file present in `dir` (sorted by name),
/// plus the total.
pub fn store_files(dir: &Path) -> Result<(Vec<StoreFile>, u64)> {
    let mut files = Vec::new();
    let mut total = 0u64;
    let entries = fs::read_dir(dir).map_err(|e| store_err(dir.display(), e.to_string()))?;
    for entry in entries {
        let entry = entry.map_err(|e| store_err(dir.display(), e.to_string()))?;
        let meta = entry
            .metadata()
            .map_err(|e| store_err(entry.path().display(), e.to_string()))?;
        if meta.is_file() {
            let bytes = meta.len();
            total += bytes;
            files.push(StoreFile {
                name: entry.file_name().to_string_lossy().into_owned(),
                bytes,
            });
        }
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    Ok((files, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Tuple, Value};
    use std::path::PathBuf;

    const RULES: &str = "speciality = hunan -> cuisine = chinese\n\
                         speciality = gyros -> cuisine = greek\n";

    /// A small hand-built world: string, int, and NULL values, ILFDs
    /// that actually fill the extended-key attribute.
    fn world(n: usize, seed: u64) -> (Relation, Relation, ExtendedKey, IlfdSet) {
        let specs = ["hunan", "gyros", "unknown"];
        let schema_r = Schema::of_strs("R", &["name", "speciality", "cuisine"], &["name"]).unwrap();
        let schema_s = Schema::of_strs("S", &["name", "speciality"], &["name"]).unwrap();
        let mut r = Relation::new(schema_r);
        let mut s = Relation::new(schema_s);
        for i in 0..n {
            let spec = specs[(i + seed as usize) % specs.len()];
            r.insert(Tuple::new(vec![
                Value::str(format!("e{i}")),
                Value::str(spec),
                Value::Null,
            ]))
            .unwrap();
            s.insert(Tuple::new(vec![
                Value::str(format!("e{}", (i + 1) % n)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::str(spec)
                },
            ]))
            .unwrap();
        }
        let key = ExtendedKey::of_strs(&["name", "cuisine"]);
        let ilfds = parse_rules(RULES).unwrap().ilfds();
        (r, s, key, ilfds)
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eid-ds-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn encode_world(n: usize, seed: u64) -> Dataset {
        let (r, s, key, ilfds) = world(n, seed);
        Dataset::encode("t", r, s, key, ilfds, Strategy::FirstMatch).unwrap()
    }

    #[test]
    fn write_open_roundtrip_preserves_everything() {
        let ds = encode_world(40, 7);
        let parent = tmp("roundtrip");
        let dir = parent.join("t.eids");
        let bytes = ds.write(&dir).unwrap();
        assert!(bytes > 0);
        assert!(!parent.join("t.eids.tmp").exists(), "temp dir leaked");

        let back = Dataset::open(&dir).unwrap();
        assert!(back.persisted());
        assert_eq!(back.name(), "t");
        assert_eq!(back.r().unwrap().len(), ds.r().unwrap().len());
        assert_eq!(back.s().unwrap().len(), ds.s().unwrap().len());
        assert_eq!(back.stats_r(), ds.stats_r());
        assert_eq!(back.stats_s(), ds.stats_s());
        assert_eq!(back.rules_text(), ds.rules_text());
        assert_eq!(back.extended_key(), ds.extended_key());
        // Deferred sections all materialize cleanly.
        back.validate().unwrap();
        // Extended relations decode tuple-identical.
        for (a, b) in ds
            .ext_r()
            .unwrap()
            .relation
            .iter()
            .zip(back.ext_r().unwrap().relation.iter())
        {
            assert_eq!(a, b);
        }
        // Columns carry the same rows (ids may shift only if the
        // original relations added symbols — resolve and compare).
        for c in 0..ds.cols_r().arity() {
            for row in 0..ds.cols_r().rows() {
                assert_eq!(
                    ds.interner().unwrap().resolve(ds.cols_r().get(row, c)),
                    back.interner().unwrap().resolve(back.cols_r().get(row, c))
                );
            }
        }
        assert!(back.index().unwrap().is_some());
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn open_missing_dir_is_typed() {
        let err = Dataset::open(Path::new("/nonexistent/x.eids")).unwrap_err();
        assert!(matches!(err, CoreError::Store { .. }), "{err}");
    }

    #[test]
    fn every_required_file_resists_truncation_and_bitflips() {
        let ds = encode_world(25, 11);
        let parent = tmp("corrupt");
        let dir = parent.join("t.eids");
        ds.write(&dir).unwrap();

        for (file, _) in REQUIRED_FILES {
            let path = dir.join(file);
            let clean = fs::read(&path).unwrap();
            // Truncations at a spread of prefix lengths.
            for frac in [0usize, 1, 7, 23] {
                let cut = (clean.len() * frac / 24).min(clean.len().saturating_sub(1));
                fs::write(&path, &clean[..cut]).unwrap();
                let err = Dataset::open(&dir).expect_err("truncated store accepted");
                assert!(matches!(err, CoreError::Store { .. }), "{file}: {err}");
            }
            // Bit flips at a spread of offsets.
            for frac in [0usize, 5, 11, 17, 23] {
                let off = clean.len() * frac / 24;
                let mut bad = clean.clone();
                bad[off] ^= 0x40;
                fs::write(&path, &bad).unwrap();
                match Dataset::open(&dir) {
                    Err(CoreError::Store { .. }) => {}
                    Err(other) => panic!("{file} offset {off}: non-store error {other}"),
                    // A flip that keeps the checksum valid is
                    // impossible; Ok means the flip landed in a spot
                    // the checksum covers, so it must not happen.
                    Ok(_) => panic!("{file} offset {off}: corrupt byte accepted"),
                }
            }
            // Deleting the file entirely.
            fs::remove_file(&path).unwrap();
            let err = Dataset::open(&dir).expect_err("missing file accepted");
            assert!(matches!(err, CoreError::Store { .. }), "{file}: {err}");
            fs::write(&path, &clean).unwrap();
            // Restored: the store opens again.
            Dataset::open(&dir).unwrap();
        }
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn failed_write_leaks_nothing() {
        let ds = encode_world(10, 3);
        let parent = tmp("faulty");
        let dir = parent.join("t.eids");
        eid_fault::install("store/write@1", 0).unwrap();
        let err = ds.write(&dir).unwrap_err();
        eid_fault::clear();
        assert!(matches!(err, CoreError::Store { .. }), "{err}");
        assert!(!dir.exists(), "half-written dataset left behind");
        assert!(!parent.join("t.eids.tmp").exists(), "temp dir leaked");
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn matcher_agrees_across_memory_encoded_and_opened_backends() {
        use crate::matcher::EntityMatcher;
        use crate::plan::StatsSource;
        use std::sync::Arc;

        let (r, s, key, ilfds) = world(24, 1);
        let config = MatchConfig::new(key.clone(), ilfds.clone());
        let memory = EntityMatcher::new(r.clone(), s.clone(), config.clone())
            .unwrap()
            .run()
            .unwrap();

        let encoded =
            Arc::new(Dataset::encode("t", r, s, key, ilfds, Strategy::FirstMatch).unwrap());
        let parent = tmp("backends");
        let dir = parent.join("t.eids");
        encoded.write(&dir).unwrap();
        let opened = Arc::new(Dataset::open(&dir).unwrap());

        for (tag, ds, want_stats) in [
            ("encoded", &encoded, StatsSource::Computed),
            ("opened", &opened, StatsSource::Persisted),
        ] {
            let m = EntityMatcher::from_dataset(Arc::clone(ds), ds.match_config()).unwrap();
            assert_eq!(m.plan().unwrap().stats_source, want_stats, "{tag}");
            let got = m.run().unwrap();
            assert_eq!(
                got.matching.entries(),
                memory.matching.entries(),
                "{tag} matching"
            );
            assert_eq!(
                got.negative.entries(),
                memory.negative.entries(),
                "{tag} negative"
            );
            assert_eq!(got.undetermined, memory.undetermined, "{tag} undetermined");
        }
        let _ = fs::remove_dir_all(&parent);
    }

    #[test]
    fn from_dataset_rejects_mismatched_key_and_strategy() {
        use crate::matcher::EntityMatcher;
        use std::sync::Arc;

        let ds = Arc::new(encode_world(8, 0));
        let mut wrong_key = ds.match_config();
        wrong_key.extended_key = ExtendedKey::of_strs(&["name"]);
        assert!(matches!(
            EntityMatcher::from_dataset(Arc::clone(&ds), wrong_key),
            Err(CoreError::Store { .. })
        ));
        let mut wrong_strategy = ds.match_config();
        wrong_strategy.strategy = Strategy::Fixpoint;
        assert!(matches!(
            EntityMatcher::from_dataset(ds, wrong_strategy),
            Err(CoreError::Store { .. })
        ));
    }

    #[test]
    fn store_files_reports_sizes() {
        let ds = encode_world(12, 5);
        let parent = tmp("sizes");
        let dir = parent.join("t.eids");
        ds.write(&dir).unwrap();
        let (files, total) = store_files(&dir).unwrap();
        assert_eq!(files.len(), REQUIRED_FILES.len() + 1); // + index
        assert!(total > 0);
        assert!(files.iter().any(|f| f.name == MANIFEST_FILE));
        let _ = fs::remove_dir_all(&parent);
    }
}
