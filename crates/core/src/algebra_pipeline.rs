//! The §4.2 relational-expression construction of `MT_RS`.
//!
//! The paper expresses matching-table construction as a series of
//! relational expressions over ILFD tables:
//!
//! ```text
//! R^j_{y_i} = Π_{K_R, y_i}( R ⋈ IM_{(r̄_j, y_i)} )      -- one per table
//! R_{y_i}   = ⋃_j R^j_{y_i}
//! R′        = R ⟕_{K_R} R_{y_1} ⟕_{K_R} … ⟕_{K_R} R_{y_m}
//! (S′ analogously)
//! MT_RS     = Π_{K_R, K_S}( R′ ⋈_{K_Ext} S′ )
//! ```
//!
//! This module is an independent implementation of the matcher built
//! *entirely* from the algebra operators and ILFD tables; the test
//! suite cross-validates it against [`crate::matcher::EntityMatcher`].
//! One refinement: the expressions are iterated to a fixpoint so that
//! chained ILFDs fire (the paper handles the chain I7+I8 by manually
//! adding the *derived* ILFD I9 — iterating subsumes that).

use eid_ilfd::tables::{tables_from_ilfds, IlfdTable};
use eid_ilfd::IlfdSet;
use eid_relational::{algebra, AttrName, Attribute, Relation, Tuple, Value, ValueType};
use eid_rules::ExtendedKey;

use crate::error::Result;
use crate::match_table::PairTable;

/// Output of the algebra pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The extended relation `R′`.
    pub extended_r: Relation,
    /// The extended relation `S′`.
    pub extended_s: Relation,
    /// The matching table.
    pub matching: PairTable,
}

/// Runs the §4.2 construction for `r` and `s` under extended key
/// `key`, with knowledge given as ILFD tables.
pub fn run_with_tables(
    r: &Relation,
    s: &Relation,
    key: &ExtendedKey,
    tables: &[IlfdTable],
) -> Result<PipelineOutcome> {
    let extended_r = extend_via_tables(r, key, tables)?;
    let extended_s = extend_via_tables(s, key, tables)?;

    // MT_RS = Π_{K_R, K_S}(R′ ⋈_{K_Ext} S′), with non-NULL equality
    // built into the join.
    let on: Vec<(AttrName, AttrName)> =
        key.attrs().iter().map(|a| (a.clone(), a.clone())).collect();
    let joined = algebra::equi_join(&extended_r, &extended_s, &on)?;

    let r_arity = extended_r.schema().arity();
    let r_key_pos: Vec<usize> = extended_r.positions_of(&r.schema().primary_key())?;
    let s_key_pos: Vec<usize> = extended_s
        .positions_of(&s.schema().primary_key())?
        .iter()
        .map(|p| p + r_arity)
        .collect();

    let mut matching = PairTable::new(r.schema().primary_key(), s.schema().primary_key());
    for t in joined.iter() {
        matching.insert(t.project(&r_key_pos), t.project(&s_key_pos));
    }

    Ok(PipelineOutcome {
        extended_r,
        extended_s,
        matching,
    })
}

/// Convenience: converts an [`IlfdSet`] into ILFD tables first.
pub fn run(
    r: &Relation,
    s: &Relation,
    key: &ExtendedKey,
    ilfds: &IlfdSet,
) -> Result<PipelineOutcome> {
    let tables = tables_from_ilfds(ilfds)?;
    run_with_tables(r, s, key, &tables)
}

/// Builds `R′`: widens `rel` with the missing extended-key attributes
/// (NULL) and repeatedly applies `Π_{K_R,y}(R′ ⋈ IM)` + outer-join
/// coalescing until no table derives anything new.
fn extend_via_tables(rel: &Relation, key: &ExtendedKey, tables: &[IlfdTable]) -> Result<Relation> {
    // Widen with every attribute any table can derive too — chained
    // derivations may pass through attributes outside K_Ext (the
    // paper's county in Example 3).
    let mut missing: Vec<AttrName> = key.missing_in(rel.schema());
    for t in tables {
        let y = t.consequent_attr();
        if !rel.schema().has_attribute(y) && !missing.contains(y) {
            // Only widen with intermediates that some chain can use:
            // conservatively include all derivable attributes.
            missing.push(y.clone());
        }
    }
    let extra: Vec<Attribute> = missing
        .iter()
        .map(|a| Attribute::new(a.clone(), ValueType::Str))
        .collect();
    let mut out = if extra.is_empty() {
        rel.clone()
    } else {
        algebra::extend(rel, &extra, |_| vec![Value::Null; extra.len()])?
    };

    let key_positions = out.positions_of(&rel.schema().primary_key())?;
    loop {
        let mut progress = false;
        for table in tables {
            if !table.applies_to(&out) {
                continue;
            }
            // Attributes of the *original* relation are base facts;
            // tables deriving them are not applicable to this side.
            if rel.schema().has_attribute(table.consequent_attr()) {
                continue;
            }
            let y = table.consequent_attr().clone();
            let y_pos = out.schema().position(&y)?;
            // Π_{K_R, y}(R′ ⋈ IM)
            let derived = table.derive_join(&out)?;
            if derived.is_empty() {
                continue;
            }
            // Coalesce: left-outer-join R′ with the derived column on
            // K_R and keep the first non-NULL value per slot.
            let mut lookup: std::collections::HashMap<Tuple, Value> =
                std::collections::HashMap::new();
            let d_key_pos: Vec<usize> = (0..key_positions.len()).collect();
            let d_y_pos = key_positions.len();
            for t in derived.iter() {
                lookup
                    .entry(t.project(&d_key_pos))
                    .or_insert_with(|| t.get(d_y_pos).clone());
            }
            let mut next = Relation::new_unchecked(out.schema().clone());
            for t in out.iter() {
                if t.get(y_pos).is_null() {
                    if let Some(v) = lookup.get(&t.project(&key_positions)) {
                        if !v.is_null() {
                            next.insert(t.with_value(y_pos, v.clone()))?;
                            progress = true;
                            continue;
                        }
                    }
                }
                next.insert(t.clone())?;
            }
            out = next;
        }
        if !progress {
            break;
        }
    }

    // Project away intermediates not in the output schema:
    // R′ = original attributes ∪ K_Ext.
    let keep: Vec<AttrName> = out
        .schema()
        .attribute_names()
        .filter(|a| rel.schema().has_attribute(a) || key.attrs().contains(a))
        .cloned()
        .collect();
    if keep.len() != out.schema().arity() {
        out = algebra::project(&out, &keep)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::Ilfd;
    use eid_relational::Schema;

    fn example3() -> (Relation, Relation, ExtendedKey, IlfdSet) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();
        r.insert_strs(&["villagewok", "chinese", "wash_ave"])
            .unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "hunan", "roseville"])
            .unwrap();
        s.insert_strs(&["twincities", "sichuan", "hennepin"])
            .unwrap();
        s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
            .unwrap();

        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
            Ilfd::of_strs(
                &[("name", "twincities"), ("street", "co_b2")],
                &[("speciality", "hunan")],
            ),
            Ilfd::of_strs(
                &[("name", "anjuman"), ("street", "le_salle_ave")],
                &[("speciality", "mughalai")],
            ),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("speciality", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        (
            r,
            s,
            ExtendedKey::of_strs(&["name", "cuisine", "speciality"]),
            ilfds,
        )
    }

    #[test]
    fn pipeline_reproduces_table_7() {
        let (r, s, key, ilfds) = example3();
        let out = run(&r, &s, &key, &ilfds).unwrap();
        assert_eq!(out.matching.len(), 3);
        assert!(out.matching.contains(
            &Tuple::of_strs(&["twincities", "chinese"]),
            &Tuple::of_strs(&["twincities", "hunan"])
        ));
        assert!(out.matching.contains(
            &Tuple::of_strs(&["itsgreek", "greek"]),
            &Tuple::of_strs(&["itsgreek", "gyros"])
        ));
        assert!(out.matching.contains(
            &Tuple::of_strs(&["anjuman", "indian"]),
            &Tuple::of_strs(&["anjuman", "mughalai"])
        ));
    }

    #[test]
    fn pipeline_extends_r_with_chain_through_county() {
        let (r, s, key, ilfds) = example3();
        let out = run(&r, &s, &key, &ilfds).unwrap();
        // R′ keeps only original ∪ K_Ext attributes (county projected away).
        assert!(!out
            .extended_r
            .schema()
            .has_attribute(&AttrName::new("county")));
        let spec = out
            .extended_r
            .schema()
            .position(&AttrName::new("speciality"))
            .unwrap();
        // itsgreek got speciality=gyros via the I7→I8 chain.
        let itsgreek = out
            .extended_r
            .iter()
            .find(|t| t.get(0) == &Value::str("itsgreek"))
            .unwrap();
        assert_eq!(itsgreek.get(spec), &Value::str("gyros"));
    }

    #[test]
    fn pipeline_agrees_with_entity_matcher() {
        use crate::matcher::{EntityMatcher, MatchConfig};
        let (r, s, key, ilfds) = example3();
        let pipeline = run(&r, &s, &key, &ilfds).unwrap();
        let mut config = MatchConfig::new(key, ilfds);
        config.strategy = eid_ilfd::Strategy::Fixpoint;
        let matcher = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        assert!(pipeline.matching.includes(&matcher.matching));
        assert!(matcher.matching.includes(&pipeline.matching));
    }

    #[test]
    fn pipeline_with_no_tables_matches_nothing_underivable() {
        let (r, s, key, _) = example3();
        let out = run(&r, &s, &key, &IlfdSet::new()).unwrap();
        assert_eq!(out.matching.len(), 0);
    }
}
