//! The blocked matching engine — precompiled rules, inverted-index
//! blocking, and chunked data parallelism.
//!
//! The seed refutation path evaluates every rule on all `|R|·|S|`
//! pairs, resolving attribute names against schemas per predicate.
//! This engine kills that hot path in three stacked steps:
//!
//! 1. **Precompilation** ([`eid_rules::compiled`]): the rule base is
//!    compiled once per run into positional evaluators — no name
//!    lookups inside the pair loop, dead orientations dropped,
//!    constants folded.
//! 2. **Blocking**: rules whose shape admits it become *block plans*
//!    over hash indexes ([`HashIndex`]). An identity rule with
//!    cross-relation equalities runs as a hash join; an ILFD-induced
//!    distinctness rule `(A₁=a₁ ∧ …) → B=b` only visits pairs where
//!    one side satisfies the antecedent literals and the other
//!    definitely disagrees on `B` — output-sensitive instead of
//!    quadratic. Rules with no indexable shape fall back to a
//!    compiled pairwise scan (*residual* path), chunked by `R` rows.
//! 3. **Parallelism**: plans and residual chunks form a task queue
//!    drained by `std::thread::scope` workers; per-task results are
//!    merged in task order, so the output is identical for any
//!    thread count.
//!
//! Every candidate pair a block plan emits is re-checked with the
//! full compiled rule before it is reported. That keeps the engine
//! *sound* by construction — index equality (hashing) and predicate
//! comparison ([`eid_relational::Value::compare`]) never need to
//! coincide exactly — and the check is O(1) per emitted pair, so the
//! cost stays output-sensitive. The one completeness caveat is
//! inherited from the seed hash join: a pair equal under `compare`
//! but hash-unequal (only `-0.0` vs `0.0` floats) is not blocked
//! together. [`JoinAlgorithm::NestedLoop`](crate::JoinAlgorithm) is
//! retained as the exhaustive oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use eid_obs::Recorder;
use eid_relational::{FxHashMap, HashIndex, Relation, Tuple, Value};
use eid_rules::{CompiledRule, CompiledRuleBase, DistinctShape, IdentityShape, NeqSide, RuleBase};

use crate::stats::{counter, histogram, rule_counter, span};

/// Below this many estimated pairs (`|R′|·|S′|`) the auto-parallel
/// engine (`threads == 0`) runs serially: thread spawn + merge
/// overhead exceeds the work itself on small inputs. Explicit thread
/// counts are always honoured.
const PARALLEL_MIN_PAIRS: usize = 50_000;

/// Pair lists produced by one engine run, as row indices into the
/// two (extended) relations. Duplicates may appear when several
/// rules fire on the same pair; `PairTable::insert` deduplicates.
#[derive(Debug, Clone, Default)]
pub struct EnginePairs {
    /// Pairs on which an identity rule definitely fired.
    pub matching: Vec<(usize, usize)>,
    /// Pairs on which a distinctness rule definitely fired.
    pub negative: Vec<(usize, usize)>,
}

/// Which relation a plan step reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RelSide {
    R,
    S,
}

impl From<NeqSide> for RelSide {
    fn from(n: NeqSide) -> RelSide {
        match n {
            NeqSide::R => RelSide::R,
            NeqSide::S => RelSide::S,
        }
    }
}

impl RelSide {
    fn opposite(self) -> RelSide {
        match self {
            RelSide::R => RelSide::S,
            RelSide::S => RelSide::R,
        }
    }
}

/// One unit of work in the task queue.
enum Task<'e> {
    /// Hash-join / literal-probe plan for one identity rule.
    Identity {
        rule: &'e CompiledRule,
        shape: IdentityShape,
    },
    /// Literal-probe × disagreement-scan plan for one distinctness
    /// rule.
    Distinct {
        rule: &'e CompiledRule,
        shape: DistinctShape,
    },
    /// Compiled pairwise scan of non-indexable rules over one chunk
    /// of `R` rows.
    Residual {
        identity: &'e [&'e CompiledRule],
        distinct: &'e [&'e CompiledRule],
        r_range: std::ops::Range<usize>,
    },
}

/// Per-side index caches, built once before the task queue runs.
#[derive(Default)]
struct SideIndexes {
    /// Multi-column equality indexes, keyed by sorted positions.
    multi: FxHashMap<Vec<usize>, HashIndex>,
    /// Single-column value groups in first-occurrence order (used to
    /// enumerate tuples *disagreeing* with a constant; deterministic
    /// iteration, unlike a raw `HashMap`).
    groups: FxHashMap<usize, Vec<(Value, Vec<usize>)>>,
}

/// The blocked matching engine over one (extended) relation pair.
pub struct BlockedEngine<'a> {
    ext_r: &'a Relation,
    ext_s: &'a Relation,
    compiled: CompiledRuleBase,
    threads: usize,
    recorder: Recorder,
}

impl<'a> BlockedEngine<'a> {
    /// Compiles `rb` against the two schemas. `threads` = `0` uses
    /// the machine's available parallelism, `1` runs serially.
    pub fn new(ext_r: &'a Relation, ext_s: &'a Relation, rb: &RuleBase, threads: usize) -> Self {
        Self::with_recorder(ext_r, ext_s, rb, threads, Recorder::new())
    }

    /// [`BlockedEngine::new`] recording into a caller-supplied
    /// [`Recorder`] (the matcher threads its run-level recorder
    /// through here). Compile time and [`CompileStats`] counters are
    /// recorded immediately.
    ///
    /// [`CompileStats`]: eid_rules::CompileStats
    pub fn with_recorder(
        ext_r: &'a Relation,
        ext_s: &'a Relation,
        rb: &RuleBase,
        threads: usize,
        recorder: Recorder,
    ) -> Self {
        let compiled = {
            let _span = recorder.span(span::ENGINE_COMPILE);
            CompiledRuleBase::compile(rb, ext_r.schema(), ext_s.schema())
        };
        let cs = compiled.stats;
        recorder.add(counter::COMPILE_SOURCE_RULES, cs.source_rules as u64);
        recorder.add(counter::COMPILE_COMPILED, cs.compiled as u64);
        recorder.add(
            counter::COMPILE_SYMMETRIC_FOLDED,
            cs.symmetric_folded as u64,
        );
        recorder.add(
            counter::COMPILE_DEAD_ORIENTATIONS,
            cs.dead_orientations as u64,
        );
        BlockedEngine {
            ext_r,
            ext_s,
            compiled,
            threads,
            recorder,
        }
    }

    /// The compiled rule base (for inspection/tests).
    pub fn compiled(&self) -> &CompiledRuleBase {
        &self.compiled
    }

    /// The recorder this engine reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Runs the engine. `record_identity`/`record_distinct` select
    /// which rule families execute (mirrors the matcher's pairwise
    /// phase flags). The result is deterministic for any thread
    /// count.
    pub fn run(&self, record_identity: bool, record_distinct: bool) -> EnginePairs {
        // Plan: indexable rules become block plans, the rest go to
        // the residual pairwise scan.
        let mut plans: Vec<Task<'_>> = Vec::new();
        let mut residual_identity: Vec<&CompiledRule> = Vec::new();
        let mut residual_distinct: Vec<&CompiledRule> = Vec::new();
        if record_identity {
            for rule in &self.compiled.identity {
                match rule.identity_shape() {
                    Some(shape) => plans.push(Task::Identity { rule, shape }),
                    None => residual_identity.push(rule),
                }
            }
        }
        if record_distinct {
            for rule in &self.compiled.distinctness {
                match rule.distinct_shape() {
                    Some(shape) => plans.push(Task::Distinct { rule, shape }),
                    None => residual_distinct.push(rule),
                }
            }
        }

        let workers = self.resolve_threads();
        if !residual_identity.is_empty() || !residual_distinct.is_empty() {
            // Split the quadratic residual scan into enough chunks to
            // keep all workers busy alongside the block plans.
            let r_len = self.ext_r.len();
            let chunks = (workers * 3).min(r_len.max(1));
            let step = r_len.div_ceil(chunks.max(1)).max(1);
            let mut start = 0;
            while start < r_len {
                let end = (start + step).min(r_len);
                plans.push(Task::Residual {
                    identity: &residual_identity,
                    distinct: &residual_distinct,
                    r_range: start..end,
                });
                start = end;
            }
        }

        let indexes = {
            let _span = self.recorder.span(span::ENGINE_INDEX);
            self.build_indexes(&plans)
        };
        self.recorder.add(counter::ENGINE_TASKS, plans.len() as u64);
        let outputs = self.run_tasks(&plans, &indexes, workers);

        let mut result = EnginePairs::default();
        for out in outputs {
            result.matching.extend(out.matching);
            result.negative.extend(out.negative);
        }
        result
    }

    fn resolve_threads(&self) -> usize {
        match self.threads {
            0 => {
                let est_pairs = self.ext_r.len().saturating_mul(self.ext_s.len());
                if est_pairs < PARALLEL_MIN_PAIRS {
                    self.recorder.add(counter::ENGINE_SERIAL_FALLBACK, 1);
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                }
            }
            n => n,
        }
    }

    /// Runs the task queue; outputs come back ordered by task id
    /// regardless of which worker ran what.
    fn run_tasks(&self, tasks: &[Task<'_>], indexes: &Indexes, workers: usize) -> Vec<EnginePairs> {
        let workers = workers.min(tasks.len()).max(1);
        self.recorder.add(counter::ENGINE_WORKERS, workers as u64);
        if workers == 1 {
            return tasks.iter().map(|t| self.run_timed(t, indexes)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<(usize, EnginePairs)> = Vec::with_capacity(tasks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let id = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(id) else { break };
                            local.push((id, self.run_timed(task, indexes)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                slots.extend(h.join().expect("engine worker panicked"));
            }
        });
        slots.sort_by_key(|(id, _)| *id);
        slots.into_iter().map(|(_, out)| out).collect()
    }

    /// [`BlockedEngine::run_task`] plus per-task accounting: wall
    /// time goes into the `engine/task_nanos` histogram and the task
    /// family's busy-time span. One recorder touch per *task*, never
    /// per pair.
    fn run_timed(&self, task: &Task<'_>, indexes: &Indexes) -> EnginePairs {
        let start = Instant::now();
        let out = self.run_task(task, indexes);
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.recorder
            .histogram(histogram::ENGINE_TASK_NANOS)
            .record(nanos);
        let path = match task {
            Task::Identity { .. } => span::ENGINE_IDENTITY,
            Task::Distinct { .. } => span::ENGINE_REFUTE,
            Task::Residual { .. } => span::ENGINE_RESIDUAL,
        };
        self.recorder.record_span(path, nanos);
        out
    }

    fn run_task(&self, task: &Task<'_>, indexes: &Indexes) -> EnginePairs {
        let mut out = EnginePairs::default();
        match task {
            Task::Identity { rule, shape } => {
                self.run_identity(rule, shape, indexes, &mut out.matching)
            }
            Task::Distinct { rule, shape } => {
                self.run_distinct(rule, shape, indexes, &mut out.negative)
            }
            Task::Residual {
                identity,
                distinct,
                r_range,
            } => {
                let mut pairs = 0u64;
                let mut matched = 0u64;
                let mut refuted = 0u64;
                for i in r_range.clone() {
                    let tr = &self.ext_r.tuples()[i];
                    for (j, ts) in self.ext_s.iter().enumerate() {
                        pairs += 1;
                        if identity.iter().any(|r| r.fires(tr, ts)) {
                            matched += 1;
                            out.matching.push((i, j));
                        }
                        if distinct.iter().any(|r| r.fires(tr, ts)) {
                            refuted += 1;
                            out.negative.push((i, j));
                        }
                    }
                }
                self.recorder.add(counter::RESIDUAL_PAIRS, pairs);
                self.recorder.add(counter::RESIDUAL_MATCHED, matched);
                self.recorder.add(counter::RESIDUAL_REFUTED, refuted);
            }
        }
        out
    }

    /// Flushes one block plan's local tallies: global blocking
    /// precision plus the per-rule breakdown.
    fn flush_block(&self, family: &str, rule: &str, candidates: u64, accepted: u64) {
        self.recorder.add(counter::BLOCK_CANDIDATES, candidates);
        self.recorder.add(counter::BLOCK_ACCEPTED, accepted);
        self.recorder
            .add(counter::BLOCK_REJECTED, candidates - accepted);
        self.recorder
            .add(&rule_counter(family, rule, "candidates"), candidates);
        self.recorder
            .add(&rule_counter(family, rule, "accepted"), accepted);
    }

    /// Identity block plan: probe `R` candidates through the literal
    /// index, then hash-join into `S` on the join columns (literal
    /// constants folded into the probe key). Without join columns the
    /// plan degrades to literal-filtered cross product — the shape of
    /// constant-only rules like the paper's `r1`.
    fn run_identity(
        &self,
        rule: &CompiledRule,
        shape: &IdentityShape,
        indexes: &Indexes,
        out: &mut Vec<(usize, usize)>,
    ) {
        let mut candidates = 0u64;
        let mut accepted = 0u64;
        let r_rows = indexes.lit_rows(RelSide::R, &shape.r_lits, self.ext_r.len());
        if shape.join.is_empty() {
            let s_rows = indexes.lit_rows(RelSide::S, &shape.s_lits, self.ext_s.len());
            for i in r_rows.iter() {
                let tr = &self.ext_r.tuples()[i];
                for j in s_rows.iter() {
                    candidates += 1;
                    if rule.fires(tr, &self.ext_s.tuples()[j]) {
                        accepted += 1;
                        out.push((i, j));
                    }
                }
            }
            self.flush_block("identity", &rule.name, candidates, accepted);
            return;
        }
        let positions = identity_probe_positions(shape);
        let index = indexes.multi(RelSide::S, &positions);
        for i in r_rows.iter() {
            let tr = &self.ext_r.tuples()[i];
            let Some(key) = identity_probe_key(shape, &positions, tr) else {
                continue;
            };
            for &j in index.probe(&key) {
                candidates += 1;
                if rule.fires(tr, &self.ext_s.tuples()[j]) {
                    accepted += 1;
                    out.push((i, j));
                }
            }
        }
        self.flush_block("identity", &rule.name, candidates, accepted);
    }

    /// Distinctness block plan: the literal side comes from an index
    /// probe; the `≠` side enumerates only value groups disagreeing
    /// with the constant (or its own literal probe, when it has
    /// literals too). Cost is proportional to the refuted pairs, not
    /// to `|R|·|S|`.
    fn run_distinct(
        &self,
        rule: &CompiledRule,
        shape: &DistinctShape,
        indexes: &Indexes,
        out: &mut Vec<(usize, usize)>,
    ) {
        let (neq_side, neq_pos, neq_value) = (&shape.neq.0, shape.neq.1, &shape.neq.2);
        let neq_side = RelSide::from(*neq_side);
        let lit_side = neq_side.opposite();
        let (lit_lits, neq_lits) = match neq_side {
            RelSide::R => (&shape.s_lits, &shape.r_lits),
            RelSide::S => (&shape.r_lits, &shape.s_lits),
        };
        let lit_rows = indexes.lit_rows(lit_side, lit_lits, self.side_len(lit_side));
        if lit_rows.is_empty() {
            self.flush_block("distinct", &rule.name, 0, 0);
            return;
        }
        let mut candidates = 0u64;
        let mut accepted = 0u64;
        let mut emit = |lit_row: usize, neq_row: usize, out: &mut Vec<(usize, usize)>| {
            let (i, j) = match neq_side {
                RelSide::R => (neq_row, lit_row),
                RelSide::S => (lit_row, neq_row),
            };
            candidates += 1;
            if rule.fires(&self.ext_r.tuples()[i], &self.ext_s.tuples()[j]) {
                accepted += 1;
                out.push((i, j));
            }
        };
        if neq_lits.is_empty() {
            // The ILFD-induced shape: enumerate disagreement groups.
            for (value, rows) in indexes.groups(neq_side, neq_pos) {
                if value == neq_value {
                    continue;
                }
                for &neq_row in rows {
                    for lit_row in lit_rows.iter() {
                        emit(lit_row, neq_row, out);
                    }
                }
            }
        } else {
            let neq_rows = indexes.lit_rows(neq_side, neq_lits, self.side_len(neq_side));
            for neq_row in neq_rows.iter() {
                for lit_row in lit_rows.iter() {
                    emit(lit_row, neq_row, out);
                }
            }
        }
        self.flush_block("distinct", &rule.name, candidates, accepted);
    }

    fn side_len(&self, side: RelSide) -> usize {
        match side {
            RelSide::R => self.ext_r.len(),
            RelSide::S => self.ext_s.len(),
        }
    }

    fn side_rel(&self, side: RelSide) -> &Relation {
        match side {
            RelSide::R => self.ext_r,
            RelSide::S => self.ext_s,
        }
    }

    /// Walks the plans once and eagerly builds every index they will
    /// probe, so the (read-only) cache can be shared across workers.
    fn build_indexes(&self, plans: &[Task<'_>]) -> Indexes {
        let mut indexes = Indexes::default();
        let mut want_multi: Vec<(RelSide, Vec<usize>)> = Vec::new();
        let mut want_groups: Vec<(RelSide, usize)> = Vec::new();
        for plan in plans {
            match plan {
                Task::Identity { shape, .. } => {
                    if let Some(p) = lit_positions(&shape.r_lits) {
                        want_multi.push((RelSide::R, p));
                    }
                    if shape.join.is_empty() {
                        if let Some(p) = lit_positions(&shape.s_lits) {
                            want_multi.push((RelSide::S, p));
                        }
                    } else {
                        want_multi.push((RelSide::S, identity_probe_positions(shape)));
                    }
                }
                Task::Distinct { shape, .. } => {
                    let neq_side = RelSide::from(shape.neq.0);
                    let (lit_lits, neq_lits) = match neq_side {
                        RelSide::R => (&shape.s_lits, &shape.r_lits),
                        RelSide::S => (&shape.r_lits, &shape.s_lits),
                    };
                    if let Some(p) = lit_positions(lit_lits) {
                        want_multi.push((neq_side.opposite(), p));
                    }
                    match lit_positions(neq_lits) {
                        Some(p) => want_multi.push((neq_side, p)),
                        None => want_groups.push((neq_side, shape.neq.1)),
                    }
                }
                Task::Residual { .. } => {}
            }
        }
        for (side, positions) in want_multi {
            indexes
                .side_mut(side)
                .multi
                .entry(positions.clone())
                .or_insert_with(|| HashIndex::build_at(self.side_rel(side), positions));
        }
        for (side, pos) in want_groups {
            let rel = self.side_rel(side);
            indexes
                .side_mut(side)
                .groups
                .entry(pos)
                .or_insert_with(|| column_groups(rel, pos));
        }
        indexes
    }
}

/// The shared, read-only index cache.
#[derive(Default)]
struct Indexes {
    r: SideIndexes,
    s: SideIndexes,
}

impl Indexes {
    fn side(&self, side: RelSide) -> &SideIndexes {
        match side {
            RelSide::R => &self.r,
            RelSide::S => &self.s,
        }
    }

    fn side_mut(&mut self, side: RelSide) -> &mut SideIndexes {
        match side {
            RelSide::R => &mut self.r,
            RelSide::S => &mut self.s,
        }
    }

    fn multi(&self, side: RelSide, positions: &[usize]) -> &HashIndex {
        &self.side(side).multi[positions]
    }

    fn groups(&self, side: RelSide, pos: usize) -> &[(Value, Vec<usize>)] {
        &self.side(side).groups[&pos]
    }

    /// The candidate rows satisfying equality literals: an index
    /// probe when there are literals, every row otherwise.
    fn lit_rows(&self, side: RelSide, lits: &[(usize, Value)], len: usize) -> LitRows<'_> {
        match lit_positions(lits) {
            None => LitRows::All(len),
            Some(positions) => {
                let key = lit_probe_key(lits, &positions);
                LitRows::Probed(self.multi(side, &positions).probe(&key))
            }
        }
    }
}

/// Candidate row set for one side of a plan.
enum LitRows<'a> {
    /// Every row `0..len`.
    All(usize),
    /// The rows returned by an index probe.
    Probed(&'a [usize]),
}

impl LitRows<'_> {
    fn is_empty(&self) -> bool {
        match self {
            LitRows::All(len) => *len == 0,
            LitRows::Probed(rows) => rows.is_empty(),
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            LitRows::All(len) => Box::new(0..*len),
            LitRows::Probed(rows) => Box::new(rows.iter().copied()),
        }
    }
}

/// Sorted, deduplicated positions of a literal list; `None` when
/// there are no literals.
fn lit_positions(lits: &[(usize, Value)]) -> Option<Vec<usize>> {
    if lits.is_empty() {
        return None;
    }
    let mut positions: Vec<usize> = lits.iter().map(|(p, _)| *p).collect();
    positions.sort_unstable();
    positions.dedup();
    Some(positions)
}

/// The probe key aligned with [`lit_positions`]: the first literal
/// value seen for each position. (A rule carrying two *different*
/// constants for one position can never fire; the final
/// verify-with-`fires` check rejects its candidates.)
fn lit_probe_key(lits: &[(usize, Value)], positions: &[usize]) -> Tuple {
    let values = positions
        .iter()
        .map(|p| {
            lits.iter()
                .find(|(lp, _)| lp == p)
                .expect("position came from these literals")
                .1
                .clone()
        })
        .collect();
    Tuple::new(values)
}

/// `S`-side index positions for an identity plan: join columns plus
/// `S` literal columns, merged and sorted.
fn identity_probe_positions(shape: &IdentityShape) -> Vec<usize> {
    let mut positions: Vec<usize> = shape.join.iter().map(|(_, sp)| *sp).collect();
    positions.extend(shape.s_lits.iter().map(|(p, _)| *p));
    positions.sort_unstable();
    positions.dedup();
    positions
}

/// The probe key for [`identity_probe_positions`]: join columns take
/// the `R` tuple's value, literal columns their constant (literals
/// win when a column is both — the verify check covers the rest).
/// `None` when a join value is NULL (the rule cannot definitely
/// fire).
fn identity_probe_key(shape: &IdentityShape, positions: &[usize], tr: &Tuple) -> Option<Tuple> {
    let mut values = Vec::with_capacity(positions.len());
    for sp in positions {
        if let Some((_, v)) = shape.s_lits.iter().find(|(p, _)| p == sp) {
            values.push(v.clone());
            continue;
        }
        let (rp, _) = shape
            .join
            .iter()
            .find(|(_, p)| p == sp)
            .expect("position came from join or literals");
        let v = tr.get(*rp);
        if v.is_null() {
            return None;
        }
        values.push(v.clone());
    }
    Some(Tuple::new(values))
}

/// Groups a column's rows by value, skipping NULLs, in
/// first-occurrence order (deterministic iteration).
fn column_groups(rel: &Relation, pos: usize) -> Vec<(Value, Vec<usize>)> {
    let mut slot_of: FxHashMap<Value, usize> = FxHashMap::default();
    let mut groups: Vec<(Value, Vec<usize>)> = Vec::new();
    for (i, t) in rel.iter().enumerate() {
        let v = t.get(pos);
        if v.is_null() {
            continue;
        }
        let slot = *slot_of.entry(v.clone()).or_insert_with(|| {
            groups.push((v.clone(), Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(i);
    }
    groups
}
