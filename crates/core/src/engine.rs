//! The match-plan executor — precompiled rules lowered into interned
//! symbol space, inverted-index blocking over columnar storage, and
//! candidate-pair-chunked data parallelism, all driven by the typed
//! [`MatchPlan`] IR.
//!
//! The seed refutation path evaluates every rule on all `|R|·|S|`
//! pairs, resolving attribute names against schemas per predicate.
//! This engine kills that hot path in four stacked steps:
//!
//! 1. **Precompilation** ([`eid_rules::compiled`]): the rule base is
//!    compiled once per run into positional evaluators — no name
//!    lookups inside the pair loop, dead orientations dropped,
//!    constants folded.
//! 2. **Interning** ([`eid_relational::Interner`]): the extended
//!    relations are encoded once into columnar `u32` symbol ids
//!    ([`Columns`]) and the compiled rules are lowered to
//!    [`InternedRule`]s over them — every hot `=`/`≠` predicate is a
//!    single integer compare against cache-resident columns, with no
//!    `Value` cloning or `Arc<str>` chasing anywhere in the pair
//!    loop.
//! 3. **Blocking**: the [`Planner`] chooses,
//!    per rule, a probe strategy from column statistics — an identity
//!    rule becomes a hash join on its most selective blocking-key
//!    columns, an ILFD-induced distinctness rule a disagreement
//!    probe, and non-indexable rules fuse into an interned pairwise
//!    scan (the *residual* path).
//! 4. **Parallelism**: each plan's driver rows are split into chunks
//!    of roughly equal *candidate-pair* weight, and the chunks form a
//!    task queue drained by `std::thread::scope` workers. The task
//!    list does not depend on the worker count and per-task results
//!    are merged in task order, so the output is identical for any
//!    thread count — and for any sound blocking-key choice.
//!
//! Every candidate pair a probe node emits is re-checked with the
//! full interned rule before it is reported, which keeps the executor
//! *sound* by construction (and makes the planner's key choice a pure
//! performance decision). Completeness of symbol equality is exact:
//! by the interner's contract, two non-NULL symbols are equal iff
//! [`Value::compare`](eid_relational::Value::compare) returns `Equal`.
//!
//! **Hardening** (DESIGN.md §9): runs are guarded by a [`RunGuard`] —
//! budgets and cancellation are checked at *task* boundaries, each
//! task executes under `catch_unwind`, and a poisoned task degrades
//! the run down the ladder, now expressed as plan rewrites:
//! [`MatchPlan::rewrite_serial`] (serial twin, byte-identical
//! output), then [`MatchPlan::rewrite_index_free`] +
//! `rewrite_serial` (the nested-loop arm, same output *set*). The
//! serial rerun discards all partial results, so its output is
//! byte-identical to a fault-free serial run. An aborted or poisoned
//! attempt never flushes its half-finished task accounting into the
//! recorder.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::borrow::Cow;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use eid_obs::trace::DEFAULT_SINK_CAPACITY;
use eid_obs::{Recorder, Trace, TraceEvent, TraceSink};
use eid_relational::{ColumnStat, Columns, FxHashMap, Interner, Relation, Sym, Tuple, NULL_SYM};
use eid_rules::{
    CompiledRuleBase, InternedDistinctShape, InternedIdentityShape, InternedRule, InternedRuleBase,
    KernelShape, NeqSide, RuleBase,
};

use crate::error::{CoreError, Result};
use crate::kernels::{self, KernelTally, Mask, Term, TermOp, FULL_MASK, LANES};
use crate::plan::{
    ArmHint, Emit, EmitHint, EmitMode, ExecMode, MatchPlan, PlanNodeKind, ProbeStrategy,
    RuleFamily, StatsSource,
};
use crate::planner::Planner;
use crate::runtime::{AbortReason, RunGuard};
use crate::sink::{
    self, PairSet, PairSink, ShardedSink, SinkGeometry, SinkMergeStats, SpillDirGuard, SpillSink,
    SpillStats,
};
use crate::stats::{counter, histogram, label, node_counter, rule_counter, span};

/// Target candidate-pair weight of one task. Small enough that every
/// worker stays busy even when one rule dominates the candidate
/// volume, large enough that per-task accounting is noise.
const CHUNK_TARGET_PAIRS: u64 = 32_768;

/// Upper bound on tasks per plan (a backstop for enormous inputs;
/// per-task overhead is ~1µs, so even this many is cheap).
const MAX_CHUNKS_PER_PLAN: u64 = 256;

/// Ceiling on the per-task output reservation derived from the
/// chunk's candidate weight (1M pairs = 8 MiB); a backstop so a
/// degenerate weight estimate cannot trigger a giant allocation.
const TASK_RESERVE_CAP: u64 = 1 << 20;

/// Pair lists produced by one executor run, as row indices into the
/// two (extended) relations. On the buffered path duplicates may
/// appear in `negative` when several rules fire on the same pair
/// (the matcher dedups on row-index pairs while converting); on the
/// streamed path the negative pairs arrive pre-deduped in
/// `negative_set` and `negative` stays empty.
#[derive(Debug, Clone, Default)]
pub struct EnginePairs {
    /// Pairs on which an identity rule definitely fired.
    pub matching: Vec<(u32, u32)>,
    /// Pairs on which a distinctness rule definitely fired (buffered
    /// emission; empty when the run streamed).
    pub negative: Vec<(u32, u32)>,
    /// The deduped negative pairs when the plan streamed emission
    /// into sharded bitsets; `None` on buffered runs.
    pub negative_set: Option<PairSet>,
}

impl EnginePairs {
    /// The negative pairs as an explicit list regardless of emit
    /// mode: the buffered raw list as-is (duplicates included, in
    /// historical emission order), or the streamed set decoded in
    /// ascending `(i, j)` order (already distinct).
    pub fn negative_pairs(&self) -> Vec<(u32, u32)> {
        match &self.negative_set {
            Some(set) => set.to_pairs(),
            None => self.negative.clone(),
        }
    }

    /// Negative pair count visible in this result: the raw list
    /// length when buffered, the distinct count when streamed.
    pub fn negative_len(&self) -> usize {
        match &self.negative_set {
            Some(set) => set.count(),
            None => self.negative.len(),
        }
    }
}

/// Which of the two encoded relations an operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelSide {
    /// The `R` (extended) relation.
    R,
    /// The `S` (extended) relation.
    S,
}

impl From<NeqSide> for RelSide {
    fn from(n: NeqSide) -> RelSide {
        match n {
            NeqSide::R => RelSide::R,
            NeqSide::S => RelSide::S,
        }
    }
}

impl RelSide {
    fn opposite(self) -> RelSide {
        match self {
            RelSide::R => RelSide::S,
            RelSide::S => RelSide::R,
        }
    }
}

/// How one lowered plan enumerates candidate pairs.
enum PlanKind<'e> {
    /// Hash-join / literal-probe plan for one identity rule; drivers
    /// are the `R`-side rows surviving the literal filter.
    /// `positions` is the planner-chosen blocking key (`None` for
    /// the literal-filtered cross product of join-free rules).
    Identity {
        rule: &'e InternedRule,
        shape: InternedIdentityShape,
        positions: Option<Vec<usize>>,
    },
    /// Literal-probe × disagreement-scan plan for one distinctness
    /// rule; drivers are the `≠`-side rows that disagree with the
    /// constant (or satisfy their own literals).
    Distinct {
        rule: &'e InternedRule,
        shape: InternedDistinctShape,
    },
    /// Kernel-dispatched identity plan: per driver, the `S` side is
    /// scanned in L2-sized tiles with the conjunctive equality kernel
    /// instead of probing an index — the planner emits this when the
    /// blocking key is non-selective enough that a probe would touch
    /// every row anyway. Byte-identical to the `Identity` probe twin.
    VectorEq {
        rule: &'e InternedRule,
        shape: InternedIdentityShape,
        tile: usize,
    },
    /// Kernel-dispatched distinctness plan: drivers are produced by
    /// the disagreement kernel over the `≠` column (every driver
    /// *definitely* fires against every literal-block row, so
    /// execution is pure bulk pair emission — no per-pair rule
    /// evaluation at all). Byte-identical to the `Distinct` twin.
    VectorDisagree {
        rule: &'e InternedRule,
        shape: InternedDistinctShape,
    },
    /// Interned pairwise scan of non-indexable rules (all `Scan`
    /// strategies fused); drivers are all `R` rows. Kernel-shaped
    /// rules are additionally precompiled into [`ResidualVec`] term
    /// lists so the tiled scan can evaluate them lane-wide, with the
    /// remaining rules falling back to scalar `fires` per pair.
    Residual {
        identity: Vec<&'e InternedRule>,
        distinct: Vec<&'e InternedRule>,
        vec_rules: Vec<ResidualVec>,
    },
}

/// One residual rule precompiled for tiled lane-wide evaluation:
/// driver-row checks resolved per `R` row, then a conjunction of
/// `S`-column terms the kernels evaluate 16 lanes at a time.
struct ResidualVec {
    /// Fires into the matching (identity) or negative (distinctness)
    /// list.
    is_identity: bool,
    /// (`R` column, symbol, op) checks on the driver row; all must
    /// pass (3-valued: NULL never passes) or the rule is inactive for
    /// that driver.
    r_checks: Vec<(usize, Sym, TermOp)>,
    /// (`R` position, `S` position) join pairs — the `S` term's
    /// symbol is gathered from the driver row (NULL deactivates).
    joins: Vec<(usize, usize)>,
    /// (`S` column, symbol, op) constant terms.
    s_consts: Vec<(usize, Sym, TermOp)>,
}

impl ResidualVec {
    /// Precompiles one kernel-shaped rule; `None` when the rule is
    /// not kernel-eligible (evaluated scalar instead).
    fn build(rule: &InternedRule, is_identity: bool) -> Option<ResidualVec> {
        rule.kernel_shape()?;
        let eq = |lits: &[(usize, Sym)]| -> Vec<(usize, Sym, TermOp)> {
            lits.iter().map(|&(p, s)| (p, s, TermOp::Eq)).collect()
        };
        if is_identity {
            let shape = rule.identity_shape()?;
            Some(ResidualVec {
                is_identity,
                r_checks: eq(&shape.r_lits),
                joins: shape.join.clone(),
                s_consts: eq(&shape.s_lits),
            })
        } else {
            let shape = rule.distinct_shape()?;
            let mut r_checks = eq(&shape.r_lits);
            let mut s_consts = eq(&shape.s_lits);
            match shape.neq.0 {
                NeqSide::R => r_checks.push((shape.neq.1, shape.neq.2, TermOp::Ne)),
                NeqSide::S => s_consts.push((shape.neq.1, shape.neq.2, TermOp::Ne)),
            }
            Some(ResidualVec {
                is_identity,
                r_checks,
                joins: Vec::new(),
                s_consts,
            })
        }
    }
}

/// Per-driver candidate-pair weights of a plan.
enum PlanWeights {
    /// Every driver contributes the same number of candidates.
    Uniform(u64),
    /// Per-driver candidate counts (identity hash joins: the probe
    /// result sizes).
    Per(Vec<u32>),
}

/// One lowered probe plan with its precomputed driver rows and
/// weights — the unit the chunker splits into tasks.
struct Plan<'e> {
    kind: PlanKind<'e>,
    /// The [`MatchPlan`] node this plan executes (per-node report).
    node: usize,
    drivers: Vec<u32>,
    weights: PlanWeights,
}

impl Plan<'_> {
    fn total_weight(&self) -> u64 {
        match &self.weights {
            PlanWeights::Uniform(w) => w * self.drivers.len() as u64,
            PlanWeights::Per(v) => v.iter().map(|&x| x as u64).sum(),
        }
    }

    fn weight(&self, i: usize) -> u64 {
        match &self.weights {
            PlanWeights::Uniform(w) => *w,
            PlanWeights::Per(v) => v[i] as u64,
        }
    }
}

/// One unit of work: a contiguous driver range of one plan.
struct Task {
    plan: usize,
    drivers: Range<usize>,
    /// Exact candidate-pair weight of this chunk — the capacity hint
    /// for refutation output (accept rate there is near 1).
    est_pairs: u64,
}

/// Per-task accounting carried back to the main thread. Workers never
/// touch the recorder (its maps are mutex-guarded; contended lock
/// hops on the hot path would serialize the scan) — the main thread
/// flushes every report after the scope ends. Timeline data rides
/// the same channel: when tracing is on, the task's epoch-relative
/// span and tile slices travel here and are replayed into per-worker
/// [`TraceSink`]s post-scope.
struct TaskReport {
    nanos: u64,
    tally: Tally,
    /// Kernel batch accounting for this task (zero on scalar paths).
    kernel: KernelTally,
    /// The worker that drained this task (the coordinating thread is
    /// worker 0); stamped at the drain loop, read at trace replay.
    worker: u32,
    /// Negative pairs this task pushed into its worker's streaming
    /// sink (0 on buffered runs) — the streamed twin of
    /// `negative.len()` for abort accounting; stamped at the drain
    /// loop.
    neg_pushed: u64,
    /// The task's timeline contribution (`None` when tracing is off).
    trace: Option<TaskTrace>,
    /// A spill flush that followed this task, as an epoch-relative
    /// `(start, duration, bytes freed)` trace slice (`None` when
    /// tracing is off or nothing spilled).
    spill_trace: Option<(u64, u64, u64)>,
}

/// The post-scope merge of a streamed attempt's per-worker sinks:
/// the deduped negative [`PairSet`] plus the accounting `finish`
/// publishes (sink counters, the merge span, the Sink node's
/// actuals).
struct MergedSink {
    set: PairSet,
    stats: SinkMergeStats,
    /// Summed spill counters of the attempt's [`SpillSink`]s (`None`
    /// on streamed runs) — `sink/spill_*` and `runtime/io_retries`.
    spill: Option<SpillStats>,
    /// Merge start on the run epoch's time axis (trace slice).
    start_nanos: u64,
    dur_nanos: u64,
}

/// One worker's negative-pair sink for a streamed or spilled attempt.
/// Push traffic delegates to the underlying [`ShardedSink`] either
/// way; the spilled variant additionally flushes resident shards to
/// its per-worker temp file at task boundaries.
enum WorkerSink {
    Mem(ShardedSink),
    Spill(SpillSink),
}

impl WorkerSink {
    fn pushes(&self) -> u64 {
        match self {
            WorkerSink::Mem(s) => s.pushes(),
            WorkerSink::Spill(s) => s.pushes(),
        }
    }

    fn take_new_bytes(&mut self) -> u64 {
        match self {
            WorkerSink::Mem(s) => s.take_new_bytes(),
            WorkerSink::Spill(s) => s.take_new_bytes(),
        }
    }
}

impl PairSink for WorkerSink {
    fn push(&mut self, i: u32, j: u32) {
        match self {
            WorkerSink::Mem(s) => s.push(i, j),
            WorkerSink::Spill(s) => s.push(i, j),
        }
    }

    fn push_row(&mut self, i: u32, js: &[u32]) {
        match self {
            WorkerSink::Mem(s) => s.push_row(i, js),
            WorkerSink::Spill(s) => s.push_row(i, js),
        }
    }

    fn push_rows(&mut self, is: &[u32], js: &[u32]) {
        match self {
            WorkerSink::Mem(s) => s.push_rows(is, js),
            WorkerSink::Spill(s) => s.push_rows(is, js),
        }
    }
}

/// A spilled attempt's resolved emission parameters: where the run
/// directory goes and how many resident bytes each worker may hold.
struct SpillConfig {
    /// Parent directory for the run's spill dir (the plan's `dir`, or
    /// the platform temp dir when empty).
    parent: PathBuf,
    /// Per-worker resident-shard cap (floored so a worker can always
    /// hold the shard it is writing).
    shard_bytes: u64,
    /// `--keep-spill`: leave the run directory behind on drop.
    keep: bool,
}

/// One task's timeline contribution: its span relative to the run
/// epoch plus any nested kernel-tile slices.
struct TaskTrace {
    /// Nanoseconds from the run epoch to task start.
    start_nanos: u64,
    /// Task wall time in nanoseconds.
    dur_nanos: u64,
    /// `(start, duration, batches)` per recorded kernel tile, epoch-
    /// relative and chronological.
    tiles: Vec<(u64, u64, u64)>,
}

/// Hard cap on recorded tile slices per task: a pathological residual
/// scan keeps its first tiles rather than growing without bound (the
/// task-level slice still covers the full duration).
const MAX_TILE_SLICES: usize = 1024;

/// Worker-side tile recorder, allocated per task only when tracing is
/// enabled. It never touches shared state — tiles accumulate locally
/// and ride back inside the [`TaskReport`].
struct TaskTracer {
    epoch: Instant,
    tiles: Vec<(u64, u64, u64)>,
}

impl TaskTracer {
    fn new(epoch: Instant) -> TaskTracer {
        TaskTracer {
            epoch,
            tiles: Vec::new(),
        }
    }

    /// Nanoseconds since the run epoch.
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records one tile slice that started at epoch-relative `start`
    /// and ends now, attributing `batches` kernel invocations to it.
    fn record_tile(&mut self, start: u64, batches: u64) {
        if self.tiles.len() < MAX_TILE_SLICES {
            let dur = self.now().saturating_sub(start);
            self.tiles.push((start, dur, batches));
        }
    }
}

/// One task's local tallies, aggregated per plan before flushing.
enum Tally {
    Block {
        candidates: u64,
        accepted: u64,
    },
    Residual {
        pairs: u64,
        matched: u64,
        refuted: u64,
    },
}

/// A symbol-keyed inverted index: multi-column `u32` key → row ids.
/// Probing borrows the key as `&[Sym]`, so lookups never allocate.
#[derive(Default)]
struct SymIndex {
    map: FxHashMap<Vec<Sym>, Vec<u32>>,
}

impl SymIndex {
    fn build(cols: &Columns, positions: &[usize]) -> SymIndex {
        let mut map: FxHashMap<Vec<Sym>, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(cols.rows(), Default::default());
        for row in 0..cols.rows() {
            let key: Vec<Sym> = positions.iter().map(|&p| cols.get(row, p)).collect();
            map.entry(key).or_default().push(row as u32);
        }
        SymIndex { map }
    }

    fn probe(&self, key: &[Sym]) -> &[u32] {
        self.map.get(key).map_or(&[][..], |v| v.as_slice())
    }
}

/// Per-side index caches, built once before the task queue runs.
#[derive(Default)]
struct SideIndexes {
    /// Multi-column equality indexes, keyed by sorted positions.
    multi: FxHashMap<Vec<usize>, SymIndex>,
}

/// The one place match plans run. Construction compiles + encodes;
/// afterwards the executor owns its whole working set (columns,
/// interner, rules, attribute names for the planner) and borrows
/// nothing. [`Executor::plan`] builds a cost-based [`MatchPlan`];
/// [`Executor::execute`] runs any plan under a [`RunGuard`] with the
/// degradation ladder expressed as plan rewrites.
#[derive(Debug, Clone)]
pub struct Executor {
    compiled: CompiledRuleBase,
    interned: InternedRuleBase,
    interner: Interner,
    cols_r: Columns,
    cols_s: Columns,
    attrs_r: Vec<String>,
    attrs_s: Vec<String>,
    threads: usize,
    kernels: bool,
    /// Emission-path hint handed to the planner: stream negative
    /// pairs into sharded bitset sinks, buffer them as raw pair
    /// lists, spill shards to disk, or let the cost model decide
    /// (the default).
    emit: EmitHint,
    /// Whether a memory-budget breach may degrade to out-of-core
    /// spilling (`--no-spill` turns this off, restoring abort).
    spill: bool,
    /// `--keep-spill`: leave spill run directories behind on drop.
    spill_keep: bool,
    /// Override of the spill parent directory (`None` = platform
    /// temp dir).
    spill_dir: Option<String>,
    /// The run's `max_pair_bytes` budget, mirrored here so the
    /// planner can choose spilled emission up front.
    budget_bytes: Option<u64>,
    /// Capture a per-worker timeline on the next [`Executor::execute`]
    /// (read back with [`Executor::take_trace`]).
    trace_enabled: bool,
    /// The most recent successful attempt's assembled timeline.
    /// Behind an `Arc` so the executor stays cloneable; clones share
    /// the slot.
    trace_out: Arc<Mutex<Option<Trace>>>,
    /// Column statistics handed in from a persistent dataset instead
    /// of recomputed per plan (`None` = scan the columns).
    stats_override: Option<StatsOverride>,
    recorder: Recorder,
}

/// Pre-computed column statistics (and their provenance) that
/// [`Executor::plan`] consumes instead of scanning the columns — the
/// dataset-store path, where the stats section was written at encode
/// time.
#[derive(Debug, Clone)]
struct StatsOverride {
    r: Vec<ColumnStat>,
    s: Vec<ColumnStat>,
    source: StatsSource,
}

/// The executor's historical name; kept so existing call sites and
/// docs keep compiling while the IR refactor lands.
pub type BlockedEngine = Executor;

impl Executor {
    /// Compiles `rb` against the two schemas and encodes both
    /// relations into interned columnar form. `threads` = `0` uses
    /// the machine's available parallelism, `1` runs serially.
    pub fn new(ext_r: &Relation, ext_s: &Relation, rb: &RuleBase, threads: usize) -> Self {
        Self::with_recorder(ext_r, ext_s, rb, threads, Recorder::new())
    }

    /// [`Executor::new`] recording into a caller-supplied
    /// [`Recorder`] (the matcher threads its run-level recorder
    /// through here). Compile/encode time and [`CompileStats`]
    /// counters are recorded immediately; `alloc/values_interned`
    /// reports the interner population.
    ///
    /// [`CompileStats`]: eid_rules::CompileStats
    pub fn with_recorder(
        ext_r: &Relation,
        ext_s: &Relation,
        rb: &RuleBase,
        threads: usize,
        recorder: Recorder,
    ) -> Self {
        let compiled = Self::compile_recorded(rb, ext_r, ext_s, &recorder);
        // Encoding builds a fresh interner from scratch, so a panic
        // mid-encode (e.g. the injected `interner/poison` fault)
        // leaves nothing poisoned worth keeping: discard and retry
        // once on a clean interner before letting the panic escape to
        // the matcher's isolation boundary.
        let encode = || {
            eid_fault::maybe_panic("interner/poison");
            let mut interner = Interner::new();
            let _span = recorder.span(span::ENGINE_ENCODE);
            let parts = (
                InternedRuleBase::from_compiled(&compiled, &mut interner),
                Columns::encode(ext_r, &mut interner),
                Columns::encode(ext_s, &mut interner),
            );
            (interner, parts)
        };
        let (interner, (interned, cols_r, cols_s)) = match catch_unwind(AssertUnwindSafe(encode)) {
            Ok(ok) => ok,
            Err(payload) => {
                recorder.add(counter::RUNTIME_ENCODE_RETRIES, 1);
                match catch_unwind(AssertUnwindSafe(encode)) {
                    Ok(ok) => ok,
                    Err(_second) => std::panic::resume_unwind(payload),
                }
            }
        };
        recorder.add(counter::ALLOC_VALUES_INTERNED, interner.len() as u64);
        let attr_names = |rel: &Relation| -> Vec<String> {
            rel.schema()
                .attribute_names()
                .map(|a| a.to_string())
                .collect()
        };
        Executor {
            compiled,
            interned,
            interner,
            attrs_r: attr_names(ext_r),
            attrs_s: attr_names(ext_s),
            cols_r,
            cols_s,
            threads,
            kernels: kernels::enabled_default(),
            emit: EmitHint::Auto,
            spill: true,
            spill_keep: false,
            spill_dir: None,
            budget_bytes: None,
            trace_enabled: false,
            trace_out: Arc::new(Mutex::new(None)),
            stats_override: None,
            recorder,
        }
    }

    /// Builds an executor over an *already encoded* dataset — the
    /// store-open path. The shared interner is cloned and only the
    /// rule constants are lowered into the clone (fresh ids for
    /// constants the data never mentions are fine: classification
    /// depends on symbol *equality*, never on id values), so nothing
    /// re-scans or re-interns the relations.
    #[allow(clippy::too_many_arguments)]
    pub fn from_encoded(
        ext_r: &Relation,
        ext_s: &Relation,
        rb: &RuleBase,
        interner: &Interner,
        cols_r: &Columns,
        cols_s: &Columns,
        threads: usize,
        recorder: Recorder,
    ) -> Self {
        let compiled = Self::compile_recorded(rb, ext_r, ext_s, &recorder);
        let mut interner = interner.clone();
        let interned = {
            let _span = recorder.span(span::ENGINE_ENCODE);
            InternedRuleBase::from_compiled(&compiled, &mut interner)
        };
        recorder.add(counter::ALLOC_VALUES_INTERNED, interner.len() as u64);
        let attr_names = |rel: &Relation| -> Vec<String> {
            rel.schema()
                .attribute_names()
                .map(|a| a.to_string())
                .collect()
        };
        Executor {
            compiled,
            interned,
            interner,
            attrs_r: attr_names(ext_r),
            attrs_s: attr_names(ext_s),
            cols_r: cols_r.clone(),
            cols_s: cols_s.clone(),
            threads,
            kernels: kernels::enabled_default(),
            emit: EmitHint::Auto,
            spill: true,
            spill_keep: false,
            spill_dir: None,
            budget_bytes: None,
            trace_enabled: false,
            trace_out: Arc::new(Mutex::new(None)),
            stats_override: None,
            recorder,
        }
    }

    /// Hands the planner pre-computed column statistics (with their
    /// provenance) so [`Executor::plan`] skips its per-plan column
    /// scan — the dataset store wrote these at encode time.
    pub fn set_stats_override(
        &mut self,
        stats_r: Vec<ColumnStat>,
        stats_s: Vec<ColumnStat>,
        source: StatsSource,
    ) {
        self.stats_override = Some(StatsOverride {
            r: stats_r,
            s: stats_s,
            source,
        });
    }

    fn compile_recorded(
        rb: &RuleBase,
        ext_r: &Relation,
        ext_s: &Relation,
        recorder: &Recorder,
    ) -> CompiledRuleBase {
        let compiled = {
            let _span = recorder.span(span::ENGINE_COMPILE);
            CompiledRuleBase::compile(rb, ext_r.schema(), ext_s.schema())
        };
        let cs = compiled.stats;
        recorder.add(counter::COMPILE_SOURCE_RULES, cs.source_rules as u64);
        recorder.add(counter::COMPILE_COMPILED, cs.compiled as u64);
        recorder.add(
            counter::COMPILE_SYMMETRIC_FOLDED,
            cs.symmetric_folded as u64,
        );
        recorder.add(
            counter::COMPILE_DEAD_ORIENTATIONS,
            cs.dead_orientations as u64,
        );
        compiled
    }

    /// Enables or disables vectorized-kernel dispatch for this
    /// executor's planner (the `EID_KERNELS` environment variable
    /// sets the default). With kernels off, plans never contain
    /// `VectorScan` nodes and residual scans evaluate scalar rules
    /// only — the classification outcome is identical either way.
    pub fn set_kernels(&mut self, on: bool) {
        self.kernels = on;
    }

    /// Whether vectorized-kernel dispatch is enabled.
    pub fn kernels_enabled(&self) -> bool {
        self.kernels
    }

    /// Sets the emission-path hint the planner sees:
    /// [`EmitHint::Auto`] (the default) streams above the pair-volume
    /// threshold, [`EmitHint::Streamed`] / [`EmitHint::Buffered`]
    /// force one path. The classification outcome is identical either
    /// way; only the intermediate representation (and its memory
    /// traffic) differs.
    pub fn set_emit(&mut self, emit: EmitHint) {
        self.emit = emit;
    }

    /// The current emission-path hint.
    pub fn emit_hint(&self) -> EmitHint {
        self.emit
    }

    /// Configures out-of-core spilling: `budget_bytes` mirrors the
    /// guard's `max_pair_bytes` so the planner can choose spilled
    /// emission up front; `enabled = false` (`--no-spill`) restores
    /// the pre-spill behaviour where a budget breach aborts; `dir`
    /// overrides the spill parent directory (`None` = the platform
    /// temp dir); `keep` (`--keep-spill`) leaves run directories
    /// behind for inspection.
    pub fn set_spill(
        &mut self,
        budget_bytes: Option<u64>,
        enabled: bool,
        dir: Option<String>,
        keep: bool,
    ) {
        self.budget_bytes = budget_bytes;
        self.spill = enabled;
        self.spill_dir = dir;
        self.spill_keep = keep;
    }

    /// Enables or disables execution-timeline capture. When on, each
    /// task records its span (plus nested kernel-tile slices) against
    /// a single run epoch; the assembled [`Trace`] of the most recent
    /// successful [`Executor::execute`] is read back with
    /// [`Executor::take_trace`]. Off (the default), the hot path pays
    /// one branch per task.
    pub fn set_trace(&mut self, on: bool) {
        self.trace_enabled = on;
    }

    /// Whether timeline capture is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Takes the timeline assembled by the most recent successful
    /// [`Executor::execute`] with tracing enabled — `None` when
    /// tracing was off, the run aborted, or the trace was already
    /// taken.
    pub fn take_trace(&self) -> Option<Trace> {
        self.trace_out.lock().ok().and_then(|mut slot| slot.take())
    }

    /// The compiled rule base (for inspection/tests).
    pub fn compiled(&self) -> &CompiledRuleBase {
        &self.compiled
    }

    /// The recorder this executor reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attribute names of one side's (extended) schema, in column
    /// order — what the planner names blocking keys with.
    pub fn attr_names(&self, side: RelSide) -> &[String] {
        match side {
            RelSide::R => &self.attrs_r,
            RelSide::S => &self.attrs_s,
        }
    }

    /// Encoded row count of one side.
    pub fn rows(&self, side: RelSide) -> usize {
        match side {
            RelSide::R => self.cols_r.rows(),
            RelSide::S => self.cols_s.rows(),
        }
    }

    /// Appends one (extended) tuple to a side's columnar view,
    /// interning its values — the incremental matcher keeps the
    /// executor in sync with its relations instead of re-encoding.
    pub fn push_row(&mut self, side: RelSide, tuple: &Tuple) {
        match side {
            RelSide::R => self.cols_r.push_row(tuple, &mut self.interner),
            RelSide::S => self.cols_s.push_row(tuple, &mut self.interner),
        }
    }

    /// Truncates a side back to `rows` rows — the rollback twin of
    /// [`Executor::push_row`].
    pub fn truncate(&mut self, side: RelSide, rows: usize) {
        match side {
            RelSide::R => self.cols_r.truncate(rows),
            RelSide::S => self.cols_s.truncate(rows),
        }
    }

    /// Whether any interned distinctness rule definitely fires on
    /// row pair (`i`, `j`) — the incremental matcher's per-pair
    /// delta check, in symbol space.
    pub fn fires_distinct(&self, i: usize, j: usize) -> bool {
        self.interned
            .distinctness
            .iter()
            .any(|r| r.fires(&self.cols_r, i, &self.cols_s, j, &self.interner))
    }

    /// Builds the cost-based [`MatchPlan`] for the selected rule
    /// families under `hint`, reading column statistics off the
    /// interned columns. Pure planning — nothing executes.
    pub fn plan(&self, record_identity: bool, record_distinct: bool, hint: ArmHint) -> MatchPlan {
        let (stats_r, stats_s, source) = match &self.stats_override {
            Some(o) => (o.r.clone(), o.s.clone(), o.source),
            None => (
                self.cols_r.column_stats(),
                self.cols_s.column_stats(),
                StatsSource::Computed,
            ),
        };
        Planner::new(
            &self.interned,
            &stats_r,
            &stats_s,
            &self.attrs_r,
            &self.attrs_s,
            self.cols_r.rows(),
            self.cols_s.rows(),
            self.threads,
            self.kernels,
            self.emit,
        )
        .with_spill(self.budget_bytes, self.spill, self.spill_dir.clone())
        .with_stats_source(source)
        .plan(record_identity, record_distinct, hint)
    }

    /// Plans with the [`ArmHint::Auto`] hint and executes, unguarded
    /// (no budgets, not cancellable). The result is deterministic for
    /// any thread count. Errors only via the degradation ladder's
    /// terminal rung (every arm poisoned).
    pub fn run(&self, record_identity: bool, record_distinct: bool) -> Result<EnginePairs> {
        self.run_guarded(record_identity, record_distinct, &RunGuard::unlimited())
    }

    /// [`Executor::run`] under a [`RunGuard`].
    pub fn run_guarded(
        &self,
        record_identity: bool,
        record_distinct: bool,
        guard: &RunGuard,
    ) -> Result<EnginePairs> {
        let plan = self.plan(record_identity, record_distinct, ArmHint::Auto);
        self.execute(&plan, guard)
    }

    /// Runs one [`MatchPlan`] under a [`RunGuard`]: budgets and
    /// cancellation are checked at task boundaries (each task is
    /// pre-charged its exact candidate weight before it runs), and a
    /// poisoned task walks the degradation ladder as plan rewrites —
    /// [`MatchPlan::rewrite_serial`] (rerun from scratch,
    /// byte-identical), then [`MatchPlan::rewrite_index_free`] (the
    /// nested-loop arm) — before giving up with
    /// [`CoreError::WorkerPanic`]. A memory budget that the blocked
    /// indexes alone would exceed rewrites the plan index-free up
    /// front (keeping its mode). On success the recorder's `engine`
    /// label names the arm that produced the published pairs.
    pub fn execute(&self, plan: &MatchPlan, guard: &RunGuard) -> Result<EnginePairs> {
        // One epoch per execute call: every traced slice — across
        // attempts and workers — shares this time axis.
        let epoch = Instant::now();
        if let Err(reason) = guard.checkpoint() {
            return Err(self.abort(guard, TaskAbort::early(reason)));
        }

        let mut lowered = self.lower(plan)?;
        let mut mem_degraded: Option<MatchPlan> = None;
        if let Some(limit) = guard.mem_limit() {
            let est = self.index_mem_estimate(&lowered.0);
            if est > limit {
                self.recorder.add(counter::RUNTIME_DEGRADED_INDEX_MEM, 1);
                let rewritten = plan.rewrite_index_free();
                lowered = self.lower(&rewritten)?;
                mem_degraded = Some(rewritten);
            }
        }
        let plan = mem_degraded.as_ref().unwrap_or(plan);
        // Pre-emptive spill upgrade: a streamed plan whose estimated
        // output bytes would trip the memory budget is rewritten to
        // spilled emission up front (mirroring the index-mem
        // degradation above), so `--max-mem-mb` means "go out-of-core"
        // rather than "abort mid-merge".
        let mut spill_upgraded: Option<MatchPlan> = None;
        if let Some(limit) = guard.mem_limit() {
            if let Some(up) = self.spill_upgrade(plan, limit) {
                self.recorder.add(counter::RUNTIME_DEGRADED_TO_SPILL, 1);
                spill_upgraded = Some(up);
            }
        }
        let plan = spill_upgraded.as_ref().unwrap_or(plan);
        if matches!(plan.mode, ExecMode::Serial { auto_small: true }) {
            self.recorder.add(counter::ENGINE_SERIAL_FALLBACK, 1);
        }

        let (kinds, node_of) = lowered;
        let (plans, indexes) = {
            let _span = self.recorder.span(span::ENGINE_INDEX);
            let indexes = self.build_indexes(&kinds);
            let plans = self.build_plans(kinds, &node_of, &indexes);
            (plans, indexes)
        };
        // Chunk every plan by candidate-pair weight. The task list is
        // independent of the worker count, so output order (= task
        // order = plan order, drivers in driver order) is identical
        // for any thread count.
        let tasks = build_tasks(&plans);

        let workers = plan.mode.workers().min(tasks.len()).max(1);
        self.recorder.add(counter::ENGINE_WORKERS, workers as u64);
        let sink_geom = self.sink_geometry(plan);

        // The in-engine ladder, one attempt per iteration. A spill
        // I/O failure (after retries) drops the *emission* rung —
        // spilled→streamed, same worker count, fresh sinks. A task
        // panic drops the *execution* rung — the serial-twin rerun
        // from scratch (partial results discarded, so the output is
        // byte-identical to a fault-free serial run; the task list is
        // mode-independent, so the lowered plans are reused as-is),
        // then the nested-loop fallback.
        let mut cur: Cow<'_, MatchPlan> = Cow::Borrowed(plan);
        let mut workers_now = workers;
        let mut site = "engine/worker";
        let mut serial_tried = false;
        loop {
            let spill_cfg = self.spill_config(&cur);
            let arm = cur.arm.arm_label(cur.index_free, workers_now);
            match self.try_run_tasks(
                &plans,
                &tasks,
                &indexes,
                workers_now,
                sink_geom,
                spill_cfg.as_ref(),
                guard,
                epoch,
                site,
            ) {
                Ok((outputs, merged)) => {
                    return self.finish(&cur, &plans, &tasks, outputs, merged, arm)
                }
                Err(TaskFailure::Aborted(a)) => return Err(self.abort(guard, a)),
                Err(TaskFailure::SpillFailed { completed }) => {
                    let lost = (tasks.len() as u64).saturating_sub(completed);
                    self.recorder.add(counter::ENGINE_ABORTED_TASKS, lost);
                    self.recorder.add(counter::RUNTIME_SPILL_FALLBACK, 1);
                    cur = Cow::Owned(cur.rewrite_streamed());
                }
                Err(TaskFailure::Poisoned { completed }) => {
                    if !serial_tried {
                        serial_tried = true;
                        let lost = (tasks.len() as u64).saturating_sub(completed).max(1);
                        self.recorder.add(counter::ENGINE_ABORTED_TASKS, lost);
                        self.recorder.add(counter::RUNTIME_DEGRADED_TO_BLOCKED, 1);
                        workers_now = 1;
                        site = "engine/serial";
                    } else {
                        return self.run_nested_fallback(&cur, guard, epoch);
                    }
                }
            }
        }
    }

    /// The sink geometry a plan's emission uses: `Some` exactly when
    /// the plan streams. Computed from the executor's *current* row
    /// counts at execute time (the planner's shard count in the plan
    /// node is display-only).
    fn sink_geometry(&self, plan: &MatchPlan) -> Option<SinkGeometry> {
        match plan.emit.mode {
            EmitMode::Streamed | EmitMode::Spilled => {
                SinkGeometry::new(self.cols_r.rows(), self.cols_s.rows())
            }
            EmitMode::Buffered => None,
        }
    }

    /// The resolved spill parameters for a spilled plan's attempt
    /// (`None` when the plan does not spill).
    fn spill_config(&self, plan: &MatchPlan) -> Option<SpillConfig> {
        if plan.emit.mode != EmitMode::Spilled {
            return None;
        }
        let parent = if plan.emit.dir.is_empty() {
            std::env::temp_dir()
        } else {
            PathBuf::from(&plan.emit.dir)
        };
        Some(SpillConfig {
            parent,
            shard_bytes: plan.emit.shard_bytes.max(4096),
            keep: self.spill_keep,
        })
    }

    /// The spilled twin of a streamed plan whose estimated output
    /// bytes exceed the memory budget — the out-of-core upgrade the
    /// executor applies up front (mirroring the index-mem
    /// degradation) when it is handed a streamed plan that would
    /// otherwise trip at merge time. `None` when spilling is off, the
    /// plan is not streamed, the estimate fits, or there is no sink
    /// geometry.
    fn spill_upgrade(&self, plan: &MatchPlan, limit: u64) -> Option<MatchPlan> {
        if !self.spill || plan.emit.mode != EmitMode::Streamed {
            return None;
        }
        let est_pairs: u64 = plan
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                PlanNodeKind::Refute { .. } => n.est_pairs,
                PlanNodeKind::VectorScan { rule, .. }
                    if matches!(rule.family, RuleFamily::Distinct) =>
                {
                    n.est_pairs
                }
                _ => None,
            })
            .sum();
        let est_bytes = est_pairs.saturating_mul(8);
        if est_bytes <= limit {
            return None;
        }
        let geom = SinkGeometry::new(self.cols_r.rows(), self.cols_s.rows())?;
        let grid = geom.grid_bytes();
        let floor = (grid / geom.shard_count.max(1) as u64).max(4096);
        let workers = plan.mode.workers().max(1) as u64;
        let cap = (limit.saturating_sub(grid) / workers).max(floor);
        let mut p = plan.clone();
        p.emit = Emit {
            mode: EmitMode::Spilled,
            shards: p.emit.shards,
            dir: self.spill_dir.clone().unwrap_or_default(),
            shard_bytes: cap,
        };
        p.emit_why = format!(
            "spill upgrade: est {est_bytes} output pair bytes over the {limit}-byte budget; \
             was: {}",
            p.emit_why
        );
        Some(p)
    }

    /// Rung 3 of the degradation ladder:
    /// `plan.rewrite_index_free().rewrite_serial()` — every rule as
    /// an index-free residual scan, serially. Emits the same pair
    /// *set* as the probe plans (possibly in a different order —
    /// callers dedup).
    fn run_nested_fallback(
        &self,
        plan: &MatchPlan,
        guard: &RunGuard,
        epoch: Instant,
    ) -> Result<EnginePairs> {
        self.recorder
            .add(counter::RUNTIME_DEGRADED_TO_NESTED_LOOP, 1);
        let nested = plan.rewrite_index_free().rewrite_serial();
        let (kinds, node_of) = self.lower(&nested)?;
        let (plans, indexes) = {
            let _span = self.recorder.span(span::ENGINE_INDEX);
            let indexes = self.build_indexes(&kinds);
            let plans = self.build_plans(kinds, &node_of, &indexes);
            (plans, indexes)
        };
        let tasks = build_tasks(&plans);
        // The nested twin went through `rewrite_buffered`, so its
        // geometry is always `None`; computed anyway for uniformity.
        let sink_geom = self.sink_geometry(&nested);
        match self.try_run_tasks(
            &plans,
            &tasks,
            &indexes,
            1,
            sink_geom,
            None,
            guard,
            epoch,
            "engine/nested",
        ) {
            Ok((outputs, merged)) => {
                self.finish(&nested, &plans, &tasks, outputs, merged, "nested_loop")
            }
            Err(TaskFailure::Aborted(a)) => Err(self.abort(guard, a)),
            Err(TaskFailure::Poisoned { .. }) | Err(TaskFailure::SpillFailed { .. }) => {
                self.recorder.set_label(label::ABORT, "worker_panic");
                Err(CoreError::WorkerPanic {
                    site: "engine/nested".into(),
                })
            }
        }
    }

    /// Lowers a [`MatchPlan`]'s probe/refute nodes into executable
    /// [`PlanKind`]s (all `Scan` strategies fuse into one residual
    /// appended last), paired with the node id each kind reports
    /// under. Fails with [`CoreError::InvalidPlan`] when a node
    /// references a rule or key the rule base cannot satisfy.
    fn lower(&self, plan: &MatchPlan) -> Result<(Vec<PlanKind<'_>>, Vec<usize>)> {
        let invalid = |detail: String| CoreError::InvalidPlan { detail };
        let mut kinds: Vec<PlanKind<'_>> = Vec::new();
        let mut node_of: Vec<usize> = Vec::new();
        let mut residual_identity: Vec<&InternedRule> = Vec::new();
        let mut residual_distinct: Vec<&InternedRule> = Vec::new();
        let mut residual_node: Option<usize> = None;
        // Index-free plans are the degradation ladder's scalar rungs
        // (and the memory-degraded arm): keep them kernel-free so a
        // kernel fault can never survive its own fallback.
        let vectorize_residual = self.kernels && !plan.index_free;
        for node in &plan.nodes {
            match &node.kind {
                PlanNodeKind::IdentityProbe { rule, strategy } => {
                    let interned = self.interned.identity.get(rule.index).ok_or_else(|| {
                        invalid(format!("identity rule #{} out of range", rule.index))
                    })?;
                    match strategy {
                        ProbeStrategy::Probe { key_positions } => {
                            let shape = interned.identity_shape().ok_or_else(|| {
                                invalid(format!("rule {} has no identity shape", rule.name))
                            })?;
                            let allowed = shape.probe_positions();
                            if key_positions.is_empty()
                                || key_positions.iter().any(|p| !allowed.contains(p))
                            {
                                return Err(invalid(format!(
                                    "blocking key {key_positions:?} of rule {} is not a \
                                     non-empty subset of its probe positions {allowed:?}",
                                    rule.name
                                )));
                            }
                            kinds.push(PlanKind::Identity {
                                rule: interned,
                                shape,
                                positions: Some(key_positions.clone()),
                            });
                            node_of.push(node.id);
                        }
                        ProbeStrategy::Cross => {
                            let shape = interned.identity_shape().ok_or_else(|| {
                                invalid(format!("rule {} has no identity shape", rule.name))
                            })?;
                            if !shape.join.is_empty() {
                                return Err(invalid(format!(
                                    "cross strategy on rule {} which has join columns",
                                    rule.name
                                )));
                            }
                            kinds.push(PlanKind::Identity {
                                rule: interned,
                                shape,
                                positions: None,
                            });
                            node_of.push(node.id);
                        }
                        ProbeStrategy::Scan => {
                            residual_identity.push(interned);
                            residual_node.get_or_insert(node.id);
                        }
                    }
                }
                PlanNodeKind::Refute { rule, strategy } => {
                    let interned = self.interned.distinctness.get(rule.index).ok_or_else(|| {
                        invalid(format!("distinctness rule #{} out of range", rule.index))
                    })?;
                    match strategy {
                        ProbeStrategy::Probe { .. } => {
                            let shape = interned.distinct_shape().ok_or_else(|| {
                                invalid(format!("rule {} has no distinctness shape", rule.name))
                            })?;
                            kinds.push(PlanKind::Distinct {
                                rule: interned,
                                shape,
                            });
                            node_of.push(node.id);
                        }
                        ProbeStrategy::Cross => {
                            return Err(invalid(format!(
                                "cross strategy is not defined for distinctness rule {}",
                                rule.name
                            )));
                        }
                        ProbeStrategy::Scan => {
                            residual_distinct.push(interned);
                            residual_node.get_or_insert(node.id);
                        }
                    }
                }
                PlanNodeKind::VectorScan {
                    rule,
                    shape: kshape,
                    tile_rows,
                    ..
                } => {
                    let tile = (*tile_rows).max(LANES);
                    match rule.family {
                        RuleFamily::Identity => {
                            let interned =
                                self.interned.identity.get(rule.index).ok_or_else(|| {
                                    invalid(format!("identity rule #{} out of range", rule.index))
                                })?;
                            if !matches!(kshape, KernelShape::EqSingle | KernelShape::EqMulti)
                                || interned.kernel_shape() != Some(*kshape)
                            {
                                return Err(invalid(format!(
                                    "vector-scan shape {kshape:?} does not match identity \
                                     rule {}",
                                    rule.name
                                )));
                            }
                            let shape = interned.identity_shape().ok_or_else(|| {
                                invalid(format!("rule {} has no identity shape", rule.name))
                            })?;
                            kinds.push(PlanKind::VectorEq {
                                rule: interned,
                                shape,
                                tile,
                            });
                            node_of.push(node.id);
                        }
                        RuleFamily::Distinct => {
                            let interned =
                                self.interned.distinctness.get(rule.index).ok_or_else(|| {
                                    invalid(format!(
                                        "distinctness rule #{} out of range",
                                        rule.index
                                    ))
                                })?;
                            if *kshape != KernelShape::Disagree
                                || interned.kernel_shape() != Some(*kshape)
                            {
                                return Err(invalid(format!(
                                    "vector-scan shape {kshape:?} does not match distinctness \
                                     rule {}",
                                    rule.name
                                )));
                            }
                            let shape = interned.distinct_shape().ok_or_else(|| {
                                invalid(format!("rule {} has no distinctness shape", rule.name))
                            })?;
                            kinds.push(PlanKind::VectorDisagree {
                                rule: interned,
                                shape,
                            });
                            node_of.push(node.id);
                        }
                    }
                }
                // Derive/Encode/Block/Dedup/Classify are the
                // matcher's (and constructor's) stages; the executor
                // only runs the probe DAG.
                _ => {}
            }
        }
        if !residual_identity.is_empty() || !residual_distinct.is_empty() {
            let mut vec_rules: Vec<ResidualVec> = Vec::new();
            if vectorize_residual {
                let mut scalar_identity = Vec::new();
                for rule in residual_identity {
                    match ResidualVec::build(rule, true) {
                        Some(v) => vec_rules.push(v),
                        None => scalar_identity.push(rule),
                    }
                }
                residual_identity = scalar_identity;
                let mut scalar_distinct = Vec::new();
                for rule in residual_distinct {
                    match ResidualVec::build(rule, false) {
                        Some(v) => vec_rules.push(v),
                        None => scalar_distinct.push(rule),
                    }
                }
                residual_distinct = scalar_distinct;
            }
            kinds.push(PlanKind::Residual {
                identity: residual_identity,
                distinct: residual_distinct,
                vec_rules,
            });
            node_of.push(residual_node.unwrap_or(plan.nodes.len()));
        }
        Ok((kinds, node_of))
    }

    /// Crude upper bound on the blocked indexes' resident bytes: each
    /// block plan may index both sides, at roughly one boxed key +
    /// row id + map overhead per row. Deliberately pessimistic — the
    /// memory budget is a safety cap, not an allocator.
    fn index_mem_estimate(&self, kinds: &[PlanKind<'_>]) -> u64 {
        const BYTES_PER_ROW: u64 = 48;
        let rows = (self.cols_r.rows() + self.cols_s.rows()) as u64;
        let block_plans = kinds
            .iter()
            .filter(|k| !matches!(k, PlanKind::Residual { .. }))
            .count() as u64;
        block_plans * rows * BYTES_PER_ROW
    }

    /// Success epilogue for one attempt: record the task count, flush
    /// the per-task accounting, stamp the arm label, and assemble the
    /// pair lists in task order.
    fn finish(
        &self,
        mplan: &MatchPlan,
        plans: &[Plan<'_>],
        tasks: &[Task],
        outputs: Vec<(EnginePairs, TaskReport)>,
        merged: Option<MergedSink>,
        arm: &str,
    ) -> Result<EnginePairs> {
        self.recorder.add(counter::ENGINE_TASKS, tasks.len() as u64);
        self.flush_reports(mplan, plans, tasks, &outputs, merged.as_ref());
        self.recorder.set_label(label::ENGINE_ARM, arm);
        let mut result = EnginePairs::default();
        result
            .matching
            .reserve(outputs.iter().map(|(o, _)| o.matching.len()).sum());
        result
            .negative
            .reserve(outputs.iter().map(|(o, _)| o.negative.len()).sum());
        for (out, _) in outputs {
            result.matching.extend(out.matching);
            result.negative.extend(out.negative);
        }
        if let Some(ms) = merged {
            self.recorder.add(counter::SINK_SHARDS, ms.stats.shards);
            self.recorder
                .add(counter::SINK_SPILLED_MERGES, ms.stats.spilled_merges);
            self.recorder.add(counter::SINK_BYTES, ms.stats.bytes);
            if let Some(sp) = &ms.spill {
                self.recorder
                    .add(counter::SINK_SPILL_BYTES, sp.spilled_bytes);
                self.recorder
                    .add(counter::SINK_SPILL_SHARDS, sp.spilled_segments);
                self.recorder.add(counter::RUNTIME_IO_RETRIES, sp.retries);
            }
            self.recorder
                .record_span(span::ENGINE_SINK_MERGE, ms.dur_nanos);
            if let Some(node) = mplan
                .nodes
                .iter()
                .find(|n| matches!(n.kind, PlanNodeKind::Sink { .. }))
            {
                self.recorder
                    .add(&node_counter(node.id, "nanos"), ms.dur_nanos);
                self.recorder.add(&node_counter(node.id, "tasks"), 1);
                self.recorder
                    .add(&node_counter(node.id, "pairs"), ms.stats.distinct);
            }
            result.negative_set = Some(ms.set);
        }
        Ok(result)
    }

    /// Abort epilogue: stamp the abort label and build the typed
    /// error with partial stats. The attempt's task accounting is
    /// *not* flushed — an aborted run never reports half-tasks.
    fn abort(&self, guard: &RunGuard, a: TaskAbort) -> CoreError {
        self.recorder.set_label(label::ABORT, a.reason.code());
        let mut partial = guard.partial_stats();
        partial.tasks_completed = a.completed;
        partial.tasks_total = a.tasks_total;
        partial.matching = a.matching;
        partial.negative = a.negative;
        CoreError::Aborted {
            reason: a.reason,
            partial,
        }
    }

    /// Flushes every task's accounting from the main thread, after
    /// the worker scope has ended: wall time into the task histogram,
    /// the family busy-span, *and* the per-rule node span; tallies
    /// aggregated per plan into the blocking/residual counters plus
    /// each plan node's own counters. Totals are identical to
    /// flushing per task; only the contention moves off the hot path.
    fn flush_reports(
        &self,
        mplan: &MatchPlan,
        plans: &[Plan<'_>],
        tasks: &[Task],
        outputs: &[(EnginePairs, TaskReport)],
        merged: Option<&MergedSink>,
    ) {
        let task_nanos = self.recorder.histogram(histogram::ENGINE_TASK_NANOS);
        let mut block: Vec<(u64, u64)> = vec![(0, 0); plans.len()];
        // Per-plan (nanos, tasks, batches) actuals — what EXPLAIN
        // ANALYZE joins against the planner's estimates by node id.
        let mut node_acc: Vec<(u64, u64, u64)> = vec![(0, 0, 0); plans.len()];
        let mut residual = (0u64, 0u64, 0u64);
        let mut kernel = KernelTally::default();
        for (task, (_, report)) in tasks.iter().zip(outputs) {
            task_nanos.record(report.nanos);
            kernel.merge(&report.kernel);
            let acc = &mut node_acc[task.plan];
            acc.0 += report.nanos;
            acc.1 += 1;
            acc.2 += report.kernel.batches;
            let path = match &plans[task.plan].kind {
                PlanKind::Identity { rule, .. } | PlanKind::VectorEq { rule, .. } => {
                    self.recorder.record_span(
                        &format!("{}/{}", span::ENGINE_IDENTITY, rule.name),
                        report.nanos,
                    );
                    span::ENGINE_IDENTITY
                }
                PlanKind::Distinct { rule, .. } | PlanKind::VectorDisagree { rule, .. } => {
                    self.recorder.record_span(
                        &format!("{}/{}", span::ENGINE_REFUTE, rule.name),
                        report.nanos,
                    );
                    span::ENGINE_REFUTE
                }
                PlanKind::Residual { .. } => span::ENGINE_RESIDUAL,
            };
            self.recorder.record_span(path, report.nanos);
            match report.tally {
                Tally::Block {
                    candidates,
                    accepted,
                } => {
                    block[task.plan].0 += candidates;
                    block[task.plan].1 += accepted;
                }
                Tally::Residual {
                    pairs,
                    matched,
                    refuted,
                } => {
                    residual.0 += pairs;
                    residual.1 += matched;
                    residual.2 += refuted;
                }
            }
        }
        if !kernel.is_zero() {
            self.recorder.add(counter::KERNEL_BATCHES, kernel.batches);
            self.recorder
                .add(counter::KERNEL_LANES_USED, kernel.lane_rows);
            self.recorder
                .add(counter::KERNEL_SCALAR_FALLBACK, kernel.scalar_tail);
        }
        for (plan, &(candidates, accepted)) in plans.iter().zip(&block) {
            match &plan.kind {
                PlanKind::Identity { rule, .. } | PlanKind::VectorEq { rule, .. } => {
                    self.flush_block("identity", &rule.name, plan.node, candidates, accepted)
                }
                PlanKind::Distinct { rule, .. } | PlanKind::VectorDisagree { rule, .. } => {
                    self.flush_block("distinct", &rule.name, plan.node, candidates, accepted)
                }
                PlanKind::Residual { .. } => {
                    self.recorder.add(counter::RESIDUAL_PAIRS, residual.0);
                    self.recorder.add(counter::RESIDUAL_MATCHED, residual.1);
                    self.recorder.add(counter::RESIDUAL_REFUTED, residual.2);
                    self.recorder
                        .add(&node_counter(plan.node, "pairs"), residual.0);
                    self.recorder
                        .add(&node_counter(plan.node, "matched"), residual.1);
                    self.recorder
                        .add(&node_counter(plan.node, "refuted"), residual.2);
                }
            }
        }
        for (plan, &(nanos, tasks_run, batches)) in plans.iter().zip(&node_acc) {
            self.recorder.add(&node_counter(plan.node, "nanos"), nanos);
            self.recorder
                .add(&node_counter(plan.node, "tasks"), tasks_run);
            if batches > 0 {
                self.recorder
                    .add(&node_counter(plan.node, "batches"), batches);
            }
        }
        self.assemble_trace(mplan, plans, tasks, outputs, merged);
    }

    /// Replays every task's timeline contribution into per-worker
    /// [`TraceSink`]s — post-scope, on the coordinating thread — and
    /// publishes the merged [`Trace`] for [`Executor::take_trace`].
    /// A worker claims task ids in increasing order, so iterating the
    /// id-sorted outputs keeps each worker's stream chronological and
    /// properly nested. No-op when tracing is off.
    fn assemble_trace(
        &self,
        mplan: &MatchPlan,
        plans: &[Plan<'_>],
        tasks: &[Task],
        outputs: &[(EnginePairs, TaskReport)],
        merged: Option<&MergedSink>,
    ) {
        if !self.trace_enabled {
            return;
        }
        // Slice names are the plan-node span labels; the fused
        // residual may report under a synthetic node past the plan's
        // end.
        let labels: Vec<Arc<str>> = plans
            .iter()
            .map(|p| {
                Arc::from(
                    mplan
                        .nodes
                        .get(p.node)
                        .map(|n| n.span.as_str())
                        .unwrap_or(span::ENGINE_RESIDUAL),
                )
            })
            .collect();
        let tile_label: Arc<str> = Arc::from("kernel/tile");
        let spill_label: Arc<str> = Arc::from(span::ENGINE_SINK_SPILL);
        let mut sinks: std::collections::BTreeMap<u32, TraceSink> = Default::default();
        let mut group: Vec<TraceEvent> = Vec::new();
        for (id, (task, (_, report))) in tasks.iter().zip(outputs).enumerate() {
            let Some(tt) = &report.trace else { continue };
            let name = &labels[task.plan];
            let (w, tid, node) = (report.worker, id as u32, plans[task.plan].node as u32);
            group.clear();
            group.push(TraceEvent::begin(
                name,
                w,
                tid,
                node,
                tt.start_nanos,
                report.kernel.batches,
            ));
            for &(t0, dur, batches) in &tt.tiles {
                group.push(TraceEvent::begin(&tile_label, w, tid, node, t0, batches));
                group.push(TraceEvent::end(&tile_label, w, tid, node, t0 + dur));
            }
            group.push(TraceEvent::end(
                name,
                w,
                tid,
                node,
                tt.start_nanos + tt.dur_nanos,
            ));
            // A task-boundary spill flush runs strictly after the
            // task on the same worker thread; emit it as a sibling
            // slice (args = bytes freed) to keep the stream
            // chronological.
            if let Some((t0, dur, freed)) = report.spill_trace {
                group.push(TraceEvent::begin(&spill_label, w, tid, node, t0, freed));
                group.push(TraceEvent::end(&spill_label, w, tid, node, t0 + dur));
            }
            sinks
                .entry(w)
                .or_insert_with(|| TraceSink::new(w, DEFAULT_SINK_CAPACITY))
                .record_group(&group);
        }
        // The shard merge runs post-scope on the coordinating thread
        // (worker 0), strictly after its last task — appending keeps
        // that worker's stream chronological.
        if let (Some(ms), Some(node)) = (
            merged,
            mplan
                .nodes
                .iter()
                .find(|n| matches!(n.kind, PlanNodeKind::Sink { .. })),
        ) {
            let name: Arc<str> = Arc::from(node.span.as_str());
            let (w, tid, nid) = (0u32, tasks.len() as u32, node.id as u32);
            group.clear();
            group.push(TraceEvent::begin(
                &name,
                w,
                tid,
                nid,
                ms.start_nanos,
                ms.stats.distinct,
            ));
            group.push(TraceEvent::end(
                &name,
                w,
                tid,
                nid,
                ms.start_nanos + ms.dur_nanos,
            ));
            sinks
                .entry(w)
                .or_insert_with(|| TraceSink::new(w, DEFAULT_SINK_CAPACITY))
                .record_group(&group);
        }
        let mut trace = Trace::new();
        for (_, sink) in sinks {
            trace.absorb(sink);
        }
        if trace.dropped > 0 {
            self.recorder.add(counter::TRACE_DROPPED, trace.dropped);
        }
        if let Ok(mut slot) = self.trace_out.lock() {
            *slot = Some(trace);
        }
    }

    /// Runs the task queue under the guard; on success, outputs come
    /// back ordered by task id regardless of which worker ran what.
    ///
    /// Every task executes under `catch_unwind` (with `fault_site`
    /// armed as an injection point): a panic poisons the attempt, the
    /// remaining workers drain cleanly, and the caller decides which
    /// ladder rung to try next. Each task is pre-charged its exact
    /// candidate weight and the guard is checked *before* the task
    /// runs, so budget trips happen ahead of the work.
    #[allow(clippy::too_many_arguments)]
    fn try_run_tasks(
        &self,
        plans: &[Plan<'_>],
        tasks: &[Task],
        indexes: &Indexes,
        workers: usize,
        sink_geom: Option<SinkGeometry>,
        spill: Option<&SpillConfig>,
        guard: &RunGuard,
        epoch: Instant,
        fault_site: &str,
    ) -> std::result::Result<TaskRun, TaskFailure> {
        let workers = workers.min(tasks.len()).max(1);
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        // A spilled attempt gets one uniquely-named run directory;
        // the guard removes it (unless `--keep-spill`) when this
        // attempt ends — success, abort, poison, or panic alike.
        let dir_guard = match spill {
            Some(cfg) => match SpillDirGuard::create(&cfg.parent, cfg.keep) {
                Ok(g) => Some(g),
                // Can't even create the spill dir: terminal spill
                // failure, drop the emission rung before any work.
                Err(_) => return Err(TaskFailure::SpillFailed { completed: 0 }),
            },
            None => None,
        };
        // With the counting allocator installed, charge each task's
        // *measured* thread-local allocation delta instead of the
        // 8-bytes-per-pair output model.
        let measured = eid_obs::alloc::active();
        let drain = |worker: u32| {
            let mut local: Vec<(usize, (EnginePairs, TaskReport))> = Vec::new();
            // Streamed plans give each worker its own sink over the
            // full pair grid, sharded by driver-row range: workers
            // touch disjoint shard *rows* only by accident, so no
            // synchronization — overlap is resolved by the post-scope
            // merge OR. Spilled plans wrap the same sink in a
            // per-worker spill file under the shared run dir.
            let mut sink = sink_geom.map(|geom| match (spill, &dir_guard) {
                (Some(cfg), Some(g)) => WorkerSink::Spill(SpillSink::new(
                    geom,
                    worker as usize,
                    g.path(),
                    cfg.shard_bytes,
                )),
                _ => WorkerSink::Mem(ShardedSink::new(geom)),
            });
            loop {
                if poisoned.load(Ordering::Relaxed) || guard.is_tripped() {
                    break;
                }
                let id = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(id) else { break };
                guard.charge_pairs(task.est_pairs);
                if guard.checkpoint().is_err() {
                    break;
                }
                let before = if measured {
                    eid_obs::alloc::thread_allocated()
                } else {
                    0
                };
                let pushed_before = sink.as_ref().map_or(0, WorkerSink::pushes);
                let run = catch_unwind(AssertUnwindSafe(|| {
                    eid_fault::maybe_panic(fault_site);
                    self.run_timed(plans, task, indexes, epoch, sink.as_mut())
                }));
                match run {
                    Ok(mut out) => {
                        out.1.worker = worker;
                        out.1.neg_pushed =
                            sink.as_ref().map_or(0, WorkerSink::pushes) - pushed_before;
                        let pairs = out.0.matching.len() + out.0.negative.len();
                        let bytes = if measured {
                            eid_obs::alloc::thread_allocated().saturating_sub(before)
                        } else {
                            // Model mode: 8 bytes per buffered pair
                            // plus whatever shard words this task's
                            // pushes forced the sink to materialize.
                            8 * pairs as u64 + sink.as_mut().map_or(0, WorkerSink::take_new_bytes)
                        };
                        guard.charge_bytes(bytes);
                        // Task boundary: cooperatively spill resident
                        // shards once the worker's cap is breached,
                        // crediting the freed bytes back to the budget
                        // (both accounting modes charge shard
                        // allocation but never observe frees). A write
                        // failure is contained inside the sink — it
                        // latches write-failed and keeps shards
                        // resident, the streamed memory profile.
                        if let Some(WorkerSink::Spill(s)) = sink.as_mut() {
                            let spill_start =
                                epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            match s.maybe_spill() {
                                Ok(0) | Err(_) => {}
                                Ok(freed) => {
                                    guard.uncharge_bytes(freed);
                                    if self.trace_enabled {
                                        let now =
                                            epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                                        out.1.spill_trace = Some((
                                            spill_start,
                                            now.saturating_sub(spill_start),
                                            freed,
                                        ));
                                    }
                                }
                            }
                        }
                        local.push((id, out));
                    }
                    Err(_) => {
                        poisoned.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            (local, sink)
        };
        let mut slots: Vec<(usize, (EnginePairs, TaskReport))> = Vec::with_capacity(tasks.len());
        let mut worker_sinks: Vec<WorkerSink> = Vec::new();
        if workers == 1 {
            let (local, sink) = drain(0);
            slots.extend(local);
            worker_sinks.extend(sink);
        } else {
            std::thread::scope(|scope| {
                // The calling thread is worker 0: spawning
                // `workers - 1` threads instead of `workers` keeps it
                // busy draining the queue rather than parked at the
                // join.
                let drain = &drain;
                let handles: Vec<_> = (1..workers)
                    .map(|w| scope.spawn(move || drain(w as u32)))
                    .collect();
                let (local, sink) = drain(0);
                slots.extend(local);
                worker_sinks.extend(sink);
                for h in handles {
                    match h.join() {
                        Ok((local, sink)) => {
                            slots.extend(local);
                            worker_sinks.extend(sink);
                        }
                        // A panic that escaped catch_unwind (e.g. out
                        // of a payload drop) — treat as poison.
                        Err(_) => poisoned.store(true, Ordering::Relaxed),
                    }
                }
            });
        }
        slots.sort_by_key(|(id, _)| *id);
        let completed = slots.len() as u64;
        // Streamed negative pairs live in the sinks, not the task
        // outputs: partial stats count each task's raw pushes.
        let partial_matching = || -> u64 {
            slots
                .iter()
                .map(|(_, (o, _))| o.matching.len() as u64)
                .sum()
        };
        let partial_negative = || -> u64 {
            slots
                .iter()
                .map(|(_, (o, r))| o.negative.len() as u64 + r.neg_pushed)
                .sum()
        };
        if let Some(reason) = guard.tripped_reason() {
            return Err(TaskFailure::Aborted(TaskAbort {
                reason,
                completed,
                tasks_total: tasks.len() as u64,
                matching: partial_matching(),
                negative: partial_negative(),
            }));
        }
        if poisoned.load(Ordering::Relaxed) {
            return Err(TaskFailure::Poisoned { completed });
        }
        let merged = match sink_geom {
            None => None,
            Some(geom) => {
                // The merged set is one more full grid; charge it
                // before merging so a memory budget trips here, not
                // after the allocation.
                guard.charge_bytes(geom.grid_bytes());
                if let Err(reason) = guard.checkpoint() {
                    return Err(TaskFailure::Aborted(TaskAbort {
                        reason,
                        completed,
                        tasks_total: tasks.len() as u64,
                        matching: partial_matching(),
                        negative: partial_negative(),
                    }));
                }
                let start_nanos = epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let start = Instant::now();
                if spill.is_some() {
                    // Spilled merge: stream each worker's on-disk
                    // segments back in row-range order and OR them
                    // with whatever stayed resident.
                    let mut spill_sinks: Vec<SpillSink> = worker_sinks
                        .into_iter()
                        .filter_map(|ws| match ws {
                            WorkerSink::Spill(s) => Some(s),
                            WorkerSink::Mem(_) => None,
                        })
                        .collect();
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        eid_fault::maybe_panic("engine/sink_merge");
                        sink::merge_spilled(&geom, &mut spill_sinks)
                    }));
                    let mut spill_stats = SpillStats::default();
                    for s in &spill_sinks {
                        spill_stats.absorb(&s.stats());
                    }
                    match run {
                        Ok(Ok((set, stats))) => {
                            let dur_nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            Some(MergedSink {
                                set,
                                stats,
                                spill: Some(spill_stats),
                                start_nanos,
                                dur_nanos,
                            })
                        }
                        // Segment read-back failed after retries:
                        // terminal spill failure, the ladder drops to
                        // streamed emission. Publish the retries spent
                        // here since this attempt's stats are
                        // otherwise discarded.
                        Ok(Err(_)) => {
                            self.recorder
                                .add(counter::RUNTIME_IO_RETRIES, spill_stats.retries);
                            return Err(TaskFailure::SpillFailed { completed });
                        }
                        // A merge panic poisons the attempt like a
                        // task panic: the ladder reruns the whole
                        // attempt (and the merge) on the next rung.
                        Err(_) => return Err(TaskFailure::Poisoned { completed }),
                    }
                } else {
                    let mem_sinks: Vec<ShardedSink> = worker_sinks
                        .into_iter()
                        .filter_map(|ws| match ws {
                            WorkerSink::Mem(s) => Some(s),
                            WorkerSink::Spill(_) => None,
                        })
                        .collect();
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        eid_fault::maybe_panic("engine/sink_merge");
                        sink::merge_shards(&geom, &mem_sinks)
                    }));
                    match run {
                        Ok((set, stats)) => {
                            let dur_nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            Some(MergedSink {
                                set,
                                stats,
                                spill: None,
                                start_nanos,
                                dur_nanos,
                            })
                        }
                        // A merge panic poisons the attempt like a task
                        // panic: the ladder reruns the whole attempt (and
                        // the merge) on the next rung.
                        Err(_) => return Err(TaskFailure::Poisoned { completed }),
                    }
                }
            }
        };
        Ok((slots.into_iter().map(|(_, out)| out).collect(), merged))
    }

    /// [`Executor::run_task`] plus wall-time measurement. No
    /// recorder traffic here — this runs inside worker threads; the
    /// report is flushed by [`Executor::flush_reports`] on the
    /// main thread.
    fn run_timed(
        &self,
        plans: &[Plan<'_>],
        task: &Task,
        indexes: &Indexes,
        epoch: Instant,
        sink: Option<&mut WorkerSink>,
    ) -> (EnginePairs, TaskReport) {
        let mut tracer = self.trace_enabled.then(|| TaskTracer::new(epoch));
        let start_nanos = epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let start = Instant::now();
        let (out, tally, kernel) = self.run_task(plans, task, indexes, tracer.as_mut(), sink);
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let trace = tracer.map(|t| TaskTrace {
            start_nanos,
            dur_nanos: nanos,
            tiles: t.tiles,
        });
        (
            out,
            TaskReport {
                nanos,
                tally,
                kernel,
                worker: 0,
                neg_pushed: 0,
                trace,
                spill_trace: None,
            },
        )
    }

    /// Dispatches the task's negative emission: into the worker's
    /// streaming sink when the plan streamed, into the task-local
    /// `negative` buffer otherwise. Matching pairs always buffer —
    /// the matching table is tiny.
    fn run_task(
        &self,
        plans: &[Plan<'_>],
        task: &Task,
        indexes: &Indexes,
        tracer: Option<&mut TaskTracer>,
        sink: Option<&mut WorkerSink>,
    ) -> (EnginePairs, Tally, KernelTally) {
        let mut out = EnginePairs::default();
        let mut kernel = KernelTally::default();
        let tally = match sink {
            Some(s) => self.run_task_kind(
                plans,
                task,
                indexes,
                tracer,
                &mut out.matching,
                s,
                &mut kernel,
            ),
            None => {
                let EnginePairs {
                    matching, negative, ..
                } = &mut out;
                self.run_task_kind(
                    plans,
                    task,
                    indexes,
                    tracer,
                    matching,
                    negative,
                    &mut kernel,
                )
            }
        };
        (out, tally, kernel)
    }

    /// [`Executor::run_task`] generic over the negative-pair sink
    /// (monomorphized for `Vec<(u32, u32)>` and [`WorkerSink`]).
    #[allow(clippy::too_many_arguments)]
    fn run_task_kind<S: PairSink>(
        &self,
        plans: &[Plan<'_>],
        task: &Task,
        indexes: &Indexes,
        tracer: Option<&mut TaskTracer>,
        matching: &mut Vec<(u32, u32)>,
        negative: &mut S,
        kernel: &mut KernelTally,
    ) -> Tally {
        let plan = &plans[task.plan];
        let drivers = &plan.drivers[task.drivers.clone()];
        match &plan.kind {
            PlanKind::Identity {
                rule,
                shape,
                positions,
            } => self.run_identity(
                rule,
                shape,
                positions.as_deref(),
                drivers,
                indexes,
                matching,
            ),
            PlanKind::Distinct { rule, shape } => {
                negative.reserve(task.est_pairs.min(TASK_RESERVE_CAP) as usize);
                self.run_distinct(rule, shape, drivers, indexes, negative)
            }
            PlanKind::VectorEq { shape, tile, .. } => {
                self.run_vector_eq(shape, *tile, drivers, kernel, matching, tracer)
            }
            PlanKind::VectorDisagree { shape, .. } => {
                negative.reserve(task.est_pairs.min(TASK_RESERVE_CAP) as usize);
                self.run_vector_disagree(shape, drivers, indexes, negative)
            }
            PlanKind::Residual {
                identity,
                distinct,
                vec_rules,
            } => self.run_residual(
                identity, distinct, vec_rules, drivers, kernel, matching, negative, tracer,
            ),
        }
    }

    /// Tiled residual scan over one driver chunk. The `S` side is
    /// walked in L2-sized row tiles; inside a tile, kernel-shaped
    /// rules evaluate lane-wide through their precompiled term lists
    /// while the remaining rules fall back to scalar `fires` on lanes
    /// the kernels left unset. Per-driver row buffers are concatenated
    /// in driver order, so the emitted pair order is byte-identical to
    /// the untiled scalar loop.
    #[allow(clippy::too_many_arguments)]
    fn run_residual<S: PairSink>(
        &self,
        identity: &[&InternedRule],
        distinct: &[&InternedRule],
        vec_rules: &[ResidualVec],
        drivers: &[u32],
        kernel: &mut KernelTally,
        matching: &mut Vec<(u32, u32)>,
        negative: &mut S,
        mut tracer: Option<&mut TaskTracer>,
    ) -> Tally {
        /// One driver's resolved vector rules: the identity and
        /// distinctness term lists still in play for this row.
        type DriverTerms<'c> = (Vec<Vec<Term<'c>>>, Vec<Vec<Term<'c>>>);
        let s_rows = self.cols_s.rows();
        // Resolve each vector rule against each driver row once:
        // driver-side checks either deactivate the rule or pin its
        // `S`-column term list for the whole scan.
        let states: Vec<DriverTerms<'_>> = drivers
            .iter()
            .map(|&i| {
                let mut id_terms = Vec::new();
                let mut dist_terms = Vec::new();
                for vr in vec_rules {
                    if let Some(terms) = self.resolve_residual_terms(vr, i as usize) {
                        if vr.is_identity {
                            id_terms.push(terms);
                        } else {
                            dist_terms.push(terms);
                        }
                    }
                }
                (id_terms, dist_terms)
            })
            .collect();
        let tile = kernels::tile_rows(self.cols_s.arity().max(1));
        let mut match_bufs: Vec<Vec<u32>> = vec![Vec::new(); drivers.len()];
        let mut neg_bufs: Vec<Vec<u32>> = vec![Vec::new(); drivers.len()];
        let mut tile_start = 0usize;
        while tile_start < s_rows {
            let tile_end = (tile_start + tile).min(s_rows);
            let pre = tracer.as_deref().map(|t| (t.now(), kernel.batches));
            for (di, &i) in drivers.iter().enumerate() {
                let (id_terms, dist_terms) = &states[di];
                self.residual_driver_tile(
                    i as usize,
                    tile_start..tile_end,
                    id_terms,
                    identity,
                    dist_terms,
                    distinct,
                    kernel,
                    &mut match_bufs[di],
                    &mut neg_bufs[di],
                );
            }
            if let (Some(t), Some((t0, b0))) = (tracer.as_deref_mut(), pre) {
                t.record_tile(t0, kernel.batches - b0);
            }
            tile_start = tile_end;
        }
        let mut matched = 0u64;
        let mut refuted = 0u64;
        matching.reserve(match_bufs.iter().map(Vec::len).sum());
        negative.reserve(neg_bufs.iter().map(Vec::len).sum());
        for (di, &i) in drivers.iter().enumerate() {
            matched += match_bufs[di].len() as u64;
            refuted += neg_bufs[di].len() as u64;
            matching.extend(match_bufs[di].iter().map(|&j| (i, j)));
            negative.push_row(i, &neg_bufs[di]);
        }
        Tally::Residual {
            pairs: drivers.len() as u64 * s_rows as u64,
            matched,
            refuted,
        }
    }

    /// Resolves one precompiled residual rule against driver row `i`:
    /// `None` when a driver-side check fails or a join symbol is NULL
    /// (the rule cannot definitely fire for this driver), otherwise
    /// the `S`-column term list the kernels evaluate.
    fn resolve_residual_terms(&self, vr: &ResidualVec, i: usize) -> Option<Vec<Term<'_>>> {
        for &(pos, sym, op) in &vr.r_checks {
            let cell = self.cols_r.get(i, pos);
            let pass = match op {
                TermOp::Eq => cell == sym,
                TermOp::Ne => cell != sym && cell != NULL_SYM,
            };
            if !pass {
                return None;
            }
        }
        let mut terms = Vec::with_capacity(vr.joins.len() + vr.s_consts.len());
        for &(rp, sp) in &vr.joins {
            let sym = self.cols_r.get(i, rp);
            if sym == NULL_SYM {
                return None;
            }
            terms.push(Term {
                col: self.cols_s.col(sp),
                sym,
                op: TermOp::Eq,
            });
        }
        for &(sp, sym, op) in &vr.s_consts {
            terms.push(Term {
                col: self.cols_s.col(sp),
                sym,
                op,
            });
        }
        Some(terms)
    }

    /// One driver's pass over one `S` tile: lane-wide masks from the
    /// vector rules, scalar `fires` filling lanes they left unset,
    /// matching/refuted rows appended in ascending order.
    #[allow(clippy::too_many_arguments)]
    fn residual_driver_tile(
        &self,
        i: usize,
        range: Range<usize>,
        id_terms: &[Vec<Term<'_>>],
        id_scalar: &[&InternedRule],
        dist_terms: &[Vec<Term<'_>>],
        dist_scalar: &[&InternedRule],
        kernel: &mut KernelTally,
        match_buf: &mut Vec<u32>,
        neg_buf: &mut Vec<u32>,
    ) {
        let vectored = !id_terms.is_empty() || !dist_terms.is_empty();
        if vectored {
            kernel.batches += 1;
        }
        let scalar_any = |rules: &[&InternedRule], j: usize| {
            rules
                .iter()
                .any(|r| r.fires(&self.cols_r, i, &self.cols_s, j, &self.interner))
        };
        let mut j = range.start;
        while j + LANES <= range.end {
            let fill = |term_lists: &[Vec<Term<'_>>], scalar: &[&InternedRule]| -> Mask {
                let mut mask: Mask = 0;
                for terms in term_lists {
                    if mask == FULL_MASK {
                        break;
                    }
                    mask |= kernels::conj_chunk(terms, j);
                }
                if !scalar.is_empty() && mask != FULL_MASK {
                    for lane in 0..LANES {
                        if mask & (1 << lane) == 0 && scalar_any(scalar, j + lane) {
                            mask |= 1 << lane;
                        }
                    }
                }
                mask
            };
            let mut m = fill(id_terms, id_scalar);
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                match_buf.push((j + lane) as u32);
                m &= m - 1;
            }
            let mut d = fill(dist_terms, dist_scalar);
            while d != 0 {
                let lane = d.trailing_zeros() as usize;
                neg_buf.push((j + lane) as u32);
                d &= d - 1;
            }
            if vectored {
                kernel.lane_rows += LANES as u64;
            }
            j += LANES;
        }
        while j < range.end {
            let id_hit = id_terms.iter().any(|t| t.iter().all(|term| term.test(j)))
                || scalar_any(id_scalar, j);
            if id_hit {
                match_buf.push(j as u32);
            }
            let dist_hit = dist_terms.iter().any(|t| t.iter().all(|term| term.test(j)))
                || scalar_any(dist_scalar, j);
            if dist_hit {
                neg_buf.push(j as u32);
            }
            if vectored {
                kernel.scalar_tail += 1;
            }
            j += 1;
        }
    }

    /// Vectorized identity plan over one driver chunk: each driver's
    /// join symbols (plus the rule's `S` constants) become a term
    /// conjunction the equality kernel scans over `S` in L2-sized
    /// tiles. Every emitted row *definitely* fires the full rule (the
    /// terms cover all of its predicates), so there is no per-pair
    /// verification — and the emission order (drivers ascending, `S`
    /// rows ascending per driver) is byte-identical to the probe twin.
    fn run_vector_eq(
        &self,
        shape: &InternedIdentityShape,
        tile: usize,
        drivers: &[u32],
        kernel: &mut KernelTally,
        out: &mut Vec<(u32, u32)>,
        mut tracer: Option<&mut TaskTracer>,
    ) -> Tally {
        let s_rows = self.cols_s.rows();
        let terms_of: Vec<Option<Vec<Term<'_>>>> = drivers
            .iter()
            .map(|&i| {
                let mut terms = Vec::with_capacity(shape.join.len() + shape.s_lits.len());
                for &(rp, sp) in &shape.join {
                    let sym = self.cols_r.get(i as usize, rp);
                    if sym == NULL_SYM {
                        return None;
                    }
                    terms.push(Term {
                        col: self.cols_s.col(sp),
                        sym,
                        op: TermOp::Eq,
                    });
                }
                for &(sp, sym) in &shape.s_lits {
                    terms.push(Term {
                        col: self.cols_s.col(sp),
                        sym,
                        op: TermOp::Eq,
                    });
                }
                Some(terms)
            })
            .collect();
        let mut bufs: Vec<Vec<u32>> = vec![Vec::new(); drivers.len()];
        let mut tile_start = 0usize;
        while tile_start < s_rows {
            let tile_end = (tile_start + tile).min(s_rows);
            let pre = tracer.as_deref().map(|t| (t.now(), kernel.batches));
            for (di, terms) in terms_of.iter().enumerate() {
                if let Some(terms) = terms {
                    let buf = &mut bufs[di];
                    kernels::conj_scan(terms, tile_start..tile_end, kernel, |j| buf.push(j));
                }
            }
            if let (Some(t), Some((t0, b0))) = (tracer.as_deref_mut(), pre) {
                t.record_tile(t0, kernel.batches - b0);
            }
            tile_start = tile_end;
        }
        let mut candidates = 0u64;
        let mut accepted = 0u64;
        out.reserve(bufs.iter().map(Vec::len).sum());
        for (di, &i) in drivers.iter().enumerate() {
            if terms_of[di].is_some() {
                candidates += s_rows as u64;
            }
            accepted += bufs[di].len() as u64;
            out.extend(bufs[di].iter().map(|&j| (i, j)));
        }
        Tally::Block {
            candidates,
            accepted,
        }
    }

    /// Vectorized distinctness plan over one driver chunk: the
    /// build-phase disagreement kernel already proved every driver
    /// disagrees with the constant (and satisfies its side's
    /// literals), and every literal-block row satisfies the opposite
    /// side's literals — so every (driver, literal-row) pair
    /// definitely fires and execution is pure pair emission. The
    /// emission order matches the scalar twin's ascending driver
    /// enumeration exactly.
    fn run_vector_disagree<S: PairSink>(
        &self,
        shape: &InternedDistinctShape,
        drivers: &[u32],
        indexes: &Indexes,
        out: &mut S,
    ) -> Tally {
        let neq_side = RelSide::from(shape.neq.0);
        let lit_side = neq_side.opposite();
        let lit_lits = match neq_side {
            RelSide::R => &shape.s_lits,
            RelSide::S => &shape.r_lits,
        };
        let lit_vec = indexes
            .lit_rows(lit_side, lit_lits, self.side_rows(lit_side))
            .to_vec();
        match neq_side {
            RelSide::R => {
                // Bulk cross-product emission: the sharded sink ORs a
                // prebuilt row template per driver instead of setting
                // bits one by one.
                out.push_rows(drivers, &lit_vec);
            }
            RelSide::S => {
                for &j in drivers {
                    for &i in &lit_vec {
                        out.push(i, j);
                    }
                }
            }
        }
        let pairs = drivers.len() as u64 * lit_vec.len() as u64;
        Tally::Block {
            candidates: pairs,
            accepted: pairs,
        }
    }

    /// Flushes one block plan's aggregated tallies: global blocking
    /// precision, the per-rule breakdown, and the plan node's own
    /// counters (joinable back to the plan JSON by node id).
    fn flush_block(&self, family: &str, rule: &str, node: usize, candidates: u64, accepted: u64) {
        self.recorder.add(counter::BLOCK_CANDIDATES, candidates);
        self.recorder.add(counter::BLOCK_ACCEPTED, accepted);
        self.recorder
            .add(counter::BLOCK_REJECTED, candidates - accepted);
        self.recorder
            .add(&rule_counter(family, rule, "candidates"), candidates);
        self.recorder
            .add(&rule_counter(family, rule, "accepted"), accepted);
        self.recorder
            .add(&node_counter(node, "candidates"), candidates);
        self.recorder.add(&node_counter(node, "accepted"), accepted);
    }

    /// Identity probe plan over one driver chunk: the drivers are the
    /// literal-filtered `R` rows; with a blocking key each probes the
    /// symbol-keyed `S` index on the planner-chosen `positions`
    /// (literal constants folded into the probe key), without one
    /// (`positions = None`, join-free rules) the plan degrades to a
    /// literal-filtered cross product — the shape of constant-only
    /// rules like the paper's `r1`.
    fn run_identity(
        &self,
        rule: &InternedRule,
        shape: &InternedIdentityShape,
        positions: Option<&[usize]>,
        drivers: &[u32],
        indexes: &Indexes,
        out: &mut Vec<(u32, u32)>,
    ) -> Tally {
        let mut candidates = 0u64;
        let mut accepted = 0u64;
        let Some(positions) = positions else {
            let s_rows = indexes.lit_rows(RelSide::S, &shape.s_lits, self.cols_s.rows());
            for &i in drivers {
                for j in s_rows.iter() {
                    candidates += 1;
                    if rule.fires(
                        &self.cols_r,
                        i as usize,
                        &self.cols_s,
                        j as usize,
                        &self.interner,
                    ) {
                        accepted += 1;
                        out.push((i, j));
                    }
                }
            }
            return Tally::Block {
                candidates,
                accepted,
            };
        };
        let index = indexes.multi(RelSide::S, positions);
        let mut key = vec![NULL_SYM; positions.len()];
        for &i in drivers {
            if !identity_probe_key(shape, positions, &self.cols_r, i as usize, &mut key) {
                continue;
            }
            for &j in index.probe(&key) {
                candidates += 1;
                if rule.fires(
                    &self.cols_r,
                    i as usize,
                    &self.cols_s,
                    j as usize,
                    &self.interner,
                ) {
                    accepted += 1;
                    out.push((i, j));
                }
            }
        }
        Tally::Block {
            candidates,
            accepted,
        }
    }

    /// Distinctness probe plan over one driver chunk: the drivers are
    /// the `≠`-side rows (disagreement-group members, or that side's
    /// own literal probe); each pairs with every literal-probe row of
    /// the opposite side. Cost is proportional to the refuted pairs,
    /// not to `|R|·|S|`.
    fn run_distinct<S: PairSink>(
        &self,
        rule: &InternedRule,
        shape: &InternedDistinctShape,
        drivers: &[u32],
        indexes: &Indexes,
        out: &mut S,
    ) -> Tally {
        let neq_side = RelSide::from(shape.neq.0);
        let lit_side = neq_side.opposite();
        let lit_lits = match neq_side {
            RelSide::R => &shape.s_lits,
            RelSide::S => &shape.r_lits,
        };
        let lit_rows = indexes.lit_rows(lit_side, lit_lits, self.side_rows(lit_side));
        let mut candidates = 0u64;
        let mut accepted = 0u64;
        for &neq_row in drivers {
            for lit_row in lit_rows.iter() {
                let (i, j) = match neq_side {
                    RelSide::R => (neq_row, lit_row),
                    RelSide::S => (lit_row, neq_row),
                };
                candidates += 1;
                if rule.fires(
                    &self.cols_r,
                    i as usize,
                    &self.cols_s,
                    j as usize,
                    &self.interner,
                ) {
                    accepted += 1;
                    out.push(i, j);
                }
            }
        }
        Tally::Block {
            candidates,
            accepted,
        }
    }

    fn side_rows(&self, side: RelSide) -> usize {
        match side {
            RelSide::R => self.cols_r.rows(),
            RelSide::S => self.cols_s.rows(),
        }
    }

    fn side_cols(&self, side: RelSide) -> &Columns {
        match side {
            RelSide::R => &self.cols_r,
            RelSide::S => &self.cols_s,
        }
    }

    /// Walks the lowered plans once and eagerly builds every index
    /// they will probe, so the (read-only) cache can be shared across
    /// workers.
    fn build_indexes(&self, kinds: &[PlanKind<'_>]) -> Indexes {
        let mut indexes = Indexes::default();
        let mut want_multi: Vec<(RelSide, Vec<usize>)> = Vec::new();
        for kind in kinds {
            match kind {
                PlanKind::Identity {
                    shape, positions, ..
                } => {
                    if let Some(p) = lit_positions(&shape.r_lits) {
                        want_multi.push((RelSide::R, p));
                    }
                    match positions {
                        Some(positions) => want_multi.push((RelSide::S, positions.clone())),
                        None => {
                            if let Some(p) = lit_positions(&shape.s_lits) {
                                want_multi.push((RelSide::S, p));
                            }
                        }
                    }
                }
                PlanKind::VectorEq { shape, .. } => {
                    if let Some(p) = lit_positions(&shape.r_lits) {
                        want_multi.push((RelSide::R, p));
                    }
                }
                PlanKind::Distinct { shape, .. } | PlanKind::VectorDisagree { shape, .. } => {
                    let neq_side = RelSide::from(shape.neq.0);
                    let (lit_lits, neq_lits) = match neq_side {
                        RelSide::R => (&shape.s_lits, &shape.r_lits),
                        RelSide::S => (&shape.r_lits, &shape.s_lits),
                    };
                    if let Some(p) = lit_positions(lit_lits) {
                        want_multi.push((neq_side.opposite(), p));
                    }
                    // With no `≠`-side literals the drivers come from
                    // a direct ascending scan of the `≠` column — no
                    // index needed.
                    if let Some(p) = lit_positions(neq_lits) {
                        want_multi.push((neq_side, p));
                    }
                }
                PlanKind::Residual { .. } => {}
            }
        }
        for (side, positions) in want_multi {
            let cols = self.side_cols(side);
            indexes
                .side_mut(side)
                .multi
                .entry(positions.clone())
                .or_insert_with(|| SymIndex::build(cols, &positions));
        }
        indexes
    }

    /// Materializes each plan's driver rows and per-driver candidate
    /// weights (exact probe-result sizes for identity hash joins,
    /// uniform fan-out everywhere else) — what the chunker splits by.
    fn build_plans<'e>(
        &self,
        kinds: Vec<PlanKind<'e>>,
        node_of: &[usize],
        indexes: &Indexes,
    ) -> Vec<Plan<'e>> {
        let mut plans = Vec::with_capacity(kinds.len() + 1);
        // Driver enumeration for vector plans runs the disagreement
        // kernel here, on the main thread — its batches are flushed
        // directly (task-phase tallies travel via TaskReport).
        let mut build_tally = KernelTally::default();
        for (kind, &node) in kinds.into_iter().zip(node_of) {
            let (drivers, weights) = match &kind {
                PlanKind::Identity {
                    shape, positions, ..
                } => {
                    let drivers = indexes
                        .lit_rows(RelSide::R, &shape.r_lits, self.cols_r.rows())
                        .to_vec();
                    match positions {
                        None => {
                            let fan_out = indexes
                                .lit_rows(RelSide::S, &shape.s_lits, self.cols_s.rows())
                                .len() as u64;
                            (drivers, PlanWeights::Uniform(fan_out))
                        }
                        Some(positions) => {
                            let index = indexes.multi(RelSide::S, positions);
                            let mut key = vec![NULL_SYM; positions.len()];
                            let weights = drivers
                                .iter()
                                .map(|&i| {
                                    if identity_probe_key(
                                        shape,
                                        positions,
                                        &self.cols_r,
                                        i as usize,
                                        &mut key,
                                    ) {
                                        index.probe(&key).len() as u32
                                    } else {
                                        0
                                    }
                                })
                                .collect();
                            (drivers, PlanWeights::Per(weights))
                        }
                    }
                }
                PlanKind::Distinct { shape, .. } => {
                    let neq_side = RelSide::from(shape.neq.0);
                    let (lit_lits, neq_lits) = match neq_side {
                        RelSide::R => (&shape.s_lits, &shape.r_lits),
                        RelSide::S => (&shape.r_lits, &shape.s_lits),
                    };
                    let fan_out = indexes
                        .lit_rows(
                            neq_side.opposite(),
                            lit_lits,
                            self.side_rows(neq_side.opposite()),
                        )
                        .len() as u64;
                    let drivers = if fan_out == 0 {
                        Vec::new() // nothing to pair with
                    } else if neq_lits.is_empty() {
                        // The ILFD-induced shape: rows disagreeing
                        // with the constant, in ascending row order —
                        // the same enumeration the disagreement
                        // kernel produces, so the vectorized twin is
                        // byte-identical.
                        let col = self.side_cols(neq_side).col(shape.neq.1);
                        let mut drivers = Vec::new();
                        for (row, &sym) in col.iter().enumerate() {
                            if sym != shape.neq.2 && sym != NULL_SYM {
                                drivers.push(row as u32);
                            }
                        }
                        drivers
                    } else {
                        indexes
                            .lit_rows(neq_side, neq_lits, self.side_rows(neq_side))
                            .to_vec()
                    };
                    (drivers, PlanWeights::Uniform(fan_out))
                }
                PlanKind::VectorEq { shape, .. } => {
                    let drivers = indexes
                        .lit_rows(RelSide::R, &shape.r_lits, self.cols_r.rows())
                        .to_vec();
                    (drivers, PlanWeights::Uniform(self.cols_s.rows() as u64))
                }
                PlanKind::VectorDisagree { shape, .. } => {
                    let neq_side = RelSide::from(shape.neq.0);
                    let (lit_lits, neq_lits) = match neq_side {
                        RelSide::R => (&shape.s_lits, &shape.r_lits),
                        RelSide::S => (&shape.r_lits, &shape.s_lits),
                    };
                    let fan_out = indexes
                        .lit_rows(
                            neq_side.opposite(),
                            lit_lits,
                            self.side_rows(neq_side.opposite()),
                        )
                        .len() as u64;
                    let col = self.side_cols(neq_side).col(shape.neq.1);
                    let drivers = if fan_out == 0 {
                        Vec::new() // nothing to pair with
                    } else if neq_lits.is_empty() {
                        let mut drivers = Vec::with_capacity(col.len());
                        kernels::disagree_rows(col, shape.neq.2, &mut build_tally, &mut drivers);
                        drivers
                    } else {
                        let candidates = indexes
                            .lit_rows(neq_side, neq_lits, self.side_rows(neq_side))
                            .to_vec();
                        let mut drivers = Vec::with_capacity(candidates.len());
                        kernels::gather_disagree(
                            col,
                            shape.neq.2,
                            &candidates,
                            &mut build_tally,
                            &mut drivers,
                        );
                        drivers
                    };
                    (drivers, PlanWeights::Uniform(fan_out))
                }
                PlanKind::Residual { .. } => (
                    (0..self.cols_r.rows() as u32).collect(),
                    PlanWeights::Uniform(self.cols_s.rows() as u64),
                ),
            };
            plans.push(Plan {
                kind,
                node,
                drivers,
                weights,
            });
        }
        if !build_tally.is_zero() {
            self.recorder
                .add(counter::KERNEL_BATCHES, build_tally.batches);
            self.recorder
                .add(counter::KERNEL_LANES_USED, build_tally.lane_rows);
            self.recorder
                .add(counter::KERNEL_SCALAR_FALLBACK, build_tally.scalar_tail);
        }
        plans
    }
}

/// What an aborted attempt knows about its own progress.
struct TaskAbort {
    reason: AbortReason,
    completed: u64,
    tasks_total: u64,
    matching: u64,
    negative: u64,
}

impl TaskAbort {
    /// An abort before any task ran (entry checkpoint).
    fn early(reason: AbortReason) -> TaskAbort {
        TaskAbort {
            reason,
            completed: 0,
            tasks_total: 0,
            matching: 0,
            negative: 0,
        }
    }
}

/// One completed task-queue attempt: the per-task pair outputs plus
/// the merged streaming sinks, when the attempt ran streamed.
type TaskRun = (Vec<(EnginePairs, TaskReport)>, Option<MergedSink>);

/// Why one task-queue attempt did not complete.
enum TaskFailure {
    /// The guard tripped (budget, deadline, or cancellation).
    Aborted(TaskAbort),
    /// A task panicked; `completed` tasks finished before the drain
    /// stopped.
    Poisoned { completed: u64 },
    /// A spilled attempt's I/O failed terminally (spill-dir creation,
    /// or segment read-back at merge, each after retries): the
    /// emission ladder drops a rung (spilled → streamed) and the
    /// attempt reruns with resident shards.
    SpillFailed { completed: u64 },
}

/// Chunks every plan into the task list the workers drain.
fn build_tasks(plans: &[Plan<'_>]) -> Vec<Task> {
    let mut tasks: Vec<Task> = Vec::new();
    for (pid, plan) in plans.iter().enumerate() {
        for (drivers, est_pairs) in chunk_ranges(plan) {
            tasks.push(Task {
                plan: pid,
                drivers,
                est_pairs,
            });
        }
    }
    tasks
}

/// Splits one plan's drivers into contiguous ranges of roughly
/// [`CHUNK_TARGET_PAIRS`] candidate weight each, paired with each
/// range's exact weight. Always yields at least one range, so even
/// empty plans appear in the task list (and flush zero tallies).
fn chunk_ranges(plan: &Plan<'_>) -> Vec<(Range<usize>, u64)> {
    let len = plan.drivers.len();
    let total = plan.total_weight();
    let target = CHUNK_TARGET_PAIRS.max(total.div_ceil(MAX_CHUNKS_PER_PLAN));
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..len {
        acc += plan.weight(i);
        if acc >= target {
            ranges.push((start..i + 1, acc));
            start = i + 1;
            acc = 0;
        }
    }
    if start < len || ranges.is_empty() {
        ranges.push((start..len, acc));
    }
    ranges
}

/// The shared, read-only index cache.
#[derive(Default)]
struct Indexes {
    r: SideIndexes,
    s: SideIndexes,
}

impl Indexes {
    fn side(&self, side: RelSide) -> &SideIndexes {
        match side {
            RelSide::R => &self.r,
            RelSide::S => &self.s,
        }
    }

    fn side_mut(&mut self, side: RelSide) -> &mut SideIndexes {
        match side {
            RelSide::R => &mut self.r,
            RelSide::S => &mut self.s,
        }
    }

    fn multi(&self, side: RelSide, positions: &[usize]) -> &SymIndex {
        &self.side(side).multi[positions]
    }

    /// The candidate rows satisfying equality literals: an index
    /// probe when there are literals, every row otherwise.
    fn lit_rows(&self, side: RelSide, lits: &[(usize, Sym)], len: usize) -> LitRows<'_> {
        match lit_positions(lits) {
            None => LitRows::All(len),
            Some(positions) => {
                let key = lit_probe_key(lits, &positions);
                LitRows::Probed(self.multi(side, &positions).probe(&key))
            }
        }
    }
}

/// Candidate row set for one side of a plan.
enum LitRows<'a> {
    /// Every row `0..len`.
    All(usize),
    /// The rows returned by an index probe.
    Probed(&'a [u32]),
}

impl LitRows<'_> {
    fn len(&self) -> usize {
        match self {
            LitRows::All(len) => *len,
            LitRows::Probed(rows) => rows.len(),
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            LitRows::All(len) => Box::new(0..*len as u32),
            LitRows::Probed(rows) => Box::new(rows.iter().copied()),
        }
    }

    fn to_vec(&self) -> Vec<u32> {
        match self {
            LitRows::All(len) => (0..*len as u32).collect(),
            LitRows::Probed(rows) => rows.to_vec(),
        }
    }
}

/// Sorted, deduplicated positions of a literal list; `None` when
/// there are no literals.
fn lit_positions(lits: &[(usize, Sym)]) -> Option<Vec<usize>> {
    if lits.is_empty() {
        return None;
    }
    let mut positions: Vec<usize> = lits.iter().map(|(p, _)| *p).collect();
    positions.sort_unstable();
    positions.dedup();
    Some(positions)
}

/// The probe key aligned with [`lit_positions`]: the first literal
/// symbol seen for each position. (A rule carrying two *different*
/// constants for one position can never fire; the final
/// verify-with-`fires` check rejects its candidates.) Positions all
/// come from `lits`, so the NULL_SYM arm is unreachable — and inert
/// if it ever were reached, since no row column holds NULL_SYM keys
/// in an index built over non-NULL groups.
fn lit_probe_key(lits: &[(usize, Sym)], positions: &[usize]) -> Vec<Sym> {
    positions
        .iter()
        .map(|p| {
            lits.iter()
                .find(|(lp, _)| lp == p)
                .map_or(NULL_SYM, |&(_, sym)| sym)
        })
        .collect()
}

/// Fills `key` (the caller's scratch buffer, one slot per chosen
/// blocking-key position): join columns take the `R` row's symbol,
/// literal columns their constant (literals win when a column is
/// both — the verify check covers the rest). `false` when a join
/// symbol is NULL (the rule cannot definitely fire). Works for any
/// subset of the shape's probe positions, which is what makes the
/// planner's key choice sound.
fn identity_probe_key(
    shape: &InternedIdentityShape,
    positions: &[usize],
    cols_r: &Columns,
    row: usize,
    key: &mut [Sym],
) -> bool {
    for (slot, sp) in positions.iter().enumerate() {
        if let Some((_, sym)) = shape.s_lits.iter().find(|(p, _)| p == sp) {
            key[slot] = *sym;
            continue;
        }
        // Every position comes from the join or the literals; a miss
        // here would mean a malformed plan — treat it as "cannot
        // definitely fire" rather than panicking in the hot loop.
        let Some((rp, _)) = shape.join.iter().find(|(_, p)| p == sp) else {
            return false;
        };
        let sym = cols_r.get(row, *rp);
        if sym == NULL_SYM {
            return false;
        }
        key[slot] = sym;
    }
    true
}
