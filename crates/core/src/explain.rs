//! Match explanations: *why* does the engine say two tuples model
//! the same entity — and *how* would it go about deciding?
//!
//! Soundness is the paper's non-negotiable property, and a sound
//! system should be able to justify its declarations. An explanation
//! for a matching pair consists of, per extended-key attribute and
//! per side, either the base value ("given") or the chain of ILFDs
//! that derived it (the SLD proof trace from
//! [`eid_ilfd::horn::HornProgram::prove_goal_trace`]), ending with
//! the extended-key equality itself.
//!
//! The same module renders the *prospective* explanation:
//! [`render_plan`] turns a [`MatchPlan`] into the indented text tree
//! behind `eid plan` — which blocking keys the cost model picked,
//! which rules scan, and why.

use std::fmt;

use eid_ilfd::horn::HornProgram;
use eid_ilfd::{PropSymbol, SymbolSet};
use eid_relational::{AttrName, Relation, Tuple, Value};

use crate::error::{CoreError, Result};
use crate::matcher::MatchConfig;
use crate::plan::{MatchPlan, PlanNodeKind, ProbeStrategy};

/// How one extended-key attribute value came to be known.
#[derive(Debug, Clone, PartialEq)]
pub enum Support {
    /// The value is stored in the source tuple.
    Given,
    /// The value was derived; the strings render the ILFD chain in
    /// application order.
    Derived(Vec<String>),
}

/// One attribute's justification on one side.
#[derive(Debug, Clone)]
pub struct AttributeSupport {
    /// The extended-key attribute.
    pub attr: AttrName,
    /// The (non-NULL) value both sides agree on.
    pub value: Value,
    /// Justification for the `R` tuple's value.
    pub r_support: Support,
    /// Justification for the `S` tuple's value.
    pub s_support: Support,
}

/// A full explanation of a matching pair.
#[derive(Debug, Clone)]
pub struct MatchExplanation {
    /// Per extended-key attribute, the agreed value and its support.
    pub attributes: Vec<AttributeSupport>,
}

impl fmt::Display for MatchExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "the tuples agree on every extended-key attribute:")?;
        for a in &self.attributes {
            writeln!(f, "  {} = {}", a.attr, a.value)?;
            for (side, support) in [("R", &a.r_support), ("S", &a.s_support)] {
                match support {
                    Support::Given => writeln!(f, "    {side}: given")?,
                    Support::Derived(chain) => {
                        writeln!(f, "    {side}: derived via")?;
                        for step in chain {
                            writeln!(f, "      {step}")?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Renders a [`MatchPlan`] as an indented text tree — the default
/// output of `eid plan`.
///
/// One line per node, indented by pipeline depth (a node sits one
/// level below the deepest node it consumes), with the probe
/// strategy and the cost model's rationale inline:
///
/// ```text
/// match plan — arm blocked, mode serial(auto-small)
///   mode: auto: 20 estimated pairs < 50000 — serial
///   derive(R) — extend R with missing extended-key attributes …
///   derive(S) — …
///     encode — intern 2+2 rows into columnar u32 symbols …
///       block-index — build symbol-keyed inverted indexes …
///         probe(key-eq) [probe 0,1] — blocking key ⟨name, cuisine⟩ …
///         scan(ilfd-1!) [scan] — …
///           dedup — first-occurrence dedup of raw pair lists …
///             classify — Figure-3 partition …
/// ```
pub fn render_plan(plan: &MatchPlan) -> String {
    let mut depth = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        let d = node
            .inputs
            .iter()
            .filter_map(|i| depth.get(*i).copied())
            .max()
            .map_or(0, |d| d + 1);
        if let Some(slot) = depth.get_mut(node.id) {
            *slot = d;
        }
    }
    let mut out = format!(
        "match plan — arm {}, mode {}\n  mode: {}\n",
        plan.arm.arm_label(plan.index_free, plan.mode.workers()),
        plan.mode_display(),
        plan.mode_why
    );
    for node in &plan.nodes {
        let indent = "  ".repeat(depth.get(node.id).copied().unwrap_or(0) + 1);
        let strategy = match &node.kind {
            PlanNodeKind::IdentityProbe { strategy, .. }
            | PlanNodeKind::Refute { strategy, .. } => match strategy {
                ProbeStrategy::Probe { key_positions } => {
                    let cols: Vec<String> = key_positions.iter().map(|p| p.to_string()).collect();
                    format!(" [probe {}]", cols.join(","))
                }
                ProbeStrategy::Cross => " [cross]".to_string(),
                ProbeStrategy::Scan => " [scan]".to_string(),
            },
            PlanNodeKind::VectorScan {
                shape,
                lanes,
                tile_rows,
                ..
            } => {
                format!(" [vector {} ×{lanes}, tile {tile_rows}]", shape.as_str())
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "{indent}{}{} — {}\n",
            node.label, strategy, node.why
        ));
    }
    out
}

/// Explains why `r_tuple` and `s_tuple` satisfy extended-key
/// equivalence under `config`. Returns an error if they do not (the
/// pair would not be in the matching table).
pub fn explain_match(
    r: &Relation,
    r_tuple: &Tuple,
    s: &Relation,
    s_tuple: &Tuple,
    config: &MatchConfig,
) -> Result<MatchExplanation> {
    let program = HornProgram::from_ilfds(&config.ilfds);
    let mut attributes = Vec::with_capacity(config.extended_key.len());
    for attr in config.extended_key.attrs() {
        let (r_value, r_support) = side_support(&program, r, r_tuple, attr)?;
        let (s_value, s_support) = side_support(&program, s, s_tuple, attr)?;
        if !r_value.non_null_eq(&s_value) {
            return Err(CoreError::ConsistencyViolation {
                pair: format!(
                    "explain_match: {attr} disagrees ({r_value} vs {s_value}) — the pair does not match"
                ),
            });
        }
        attributes.push(AttributeSupport {
            attr: attr.clone(),
            value: r_value,
            r_support,
            s_support,
        });
    }
    Ok(MatchExplanation { attributes })
}

/// Resolves one attribute on one side: a given value, or the unique
/// derivable value with its proof trace.
fn side_support(
    program: &HornProgram,
    rel: &Relation,
    tuple: &Tuple,
    attr: &AttrName,
) -> Result<(Value, Support)> {
    if let Some(v) = tuple.value_of(rel.schema(), attr) {
        if !v.is_null() {
            return Ok((v.clone(), Support::Given));
        }
    }
    // Derive: forward-chain from the tuple's facts, find the value(s)
    // the closure assigns to `attr`, then extract the SLD trace.
    let facts = SymbolSet::of_tuple(rel.schema(), tuple);
    let model = program.forward_chain(&facts);
    let candidates: Vec<&PropSymbol> = model
        .iter()
        .filter(|s| &s.attr == attr && !facts.contains(s))
        .collect();
    match candidates.as_slice() {
        [symbol] => {
            let trace = program
                .prove_goal_trace(symbol, &facts)
                .expect("closure member must be provable");
            let chain: Vec<String> = trace.iter().map(|c| c.to_string()).collect();
            Ok((symbol.value.clone(), Support::Derived(chain)))
        }
        [] => Err(CoreError::ConsistencyViolation {
            pair: format!("explain_match: {attr} is underivable for {tuple}"),
        }),
        _ => Err(CoreError::ConsistencyViolation {
            pair: format!("explain_match: conflicting derivations for {attr} of {tuple}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_datagen_is_not_a_dep::*;

    /// Local copy of the Example 3 fixtures (eid-datagen depends on
    /// eid-core, so we cannot use it here).
    mod eid_datagen_is_not_a_dep {
        use super::super::*;
        use eid_ilfd::{Ilfd, IlfdSet};
        use eid_relational::Schema;
        use eid_rules::ExtendedKey;

        pub fn example3() -> (Relation, Relation, MatchConfig) {
            let r_schema =
                Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
            let mut r = Relation::new(r_schema);
            r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
            r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
                .unwrap();

            let s_schema = Schema::of_strs(
                "S",
                &["name", "speciality", "county"],
                &["name", "speciality"],
            )
            .unwrap();
            let mut s = Relation::new(s_schema);
            s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
            s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
                .unwrap();

            let ilfds: IlfdSet = vec![
                Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
                Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
                Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
                Ilfd::of_strs(
                    &[("name", "itsgreek"), ("county", "ramsey")],
                    &[("speciality", "gyros")],
                ),
            ]
            .into_iter()
            .collect();
            let config = MatchConfig::new(
                ExtendedKey::of_strs(&["name", "cuisine", "speciality"]),
                ilfds,
            );
            (r, s, config)
        }
    }

    #[test]
    fn explains_the_itsgreek_chain() {
        let (r, s, config) = example3();
        let explanation = explain_match(
            &r,
            &r.tuples()[0], // itsgreek
            &s,
            &s.tuples()[0],
            &config,
        )
        .unwrap();
        assert_eq!(explanation.attributes.len(), 3);

        // name: given on both sides.
        assert_eq!(explanation.attributes[0].r_support, Support::Given);
        assert_eq!(explanation.attributes[0].s_support, Support::Given);

        // cuisine: given in R, derived in S via one ILFD.
        let cuisine = &explanation.attributes[1];
        assert_eq!(cuisine.r_support, Support::Given);
        match &cuisine.s_support {
            Support::Derived(chain) => assert_eq!(chain.len(), 1),
            other => panic!("expected derivation, got {other:?}"),
        }

        // speciality: derived in R via the two-step I7→I8 chain.
        let speciality = &explanation.attributes[2];
        match &speciality.r_support {
            Support::Derived(chain) => {
                assert_eq!(chain.len(), 2, "{chain:?}");
                assert!(chain[0].contains("county = ramsey"));
                assert!(chain[1].contains("speciality = gyros"));
            }
            other => panic!("expected derivation, got {other:?}"),
        }
        // Rendering mentions the chain.
        let text = explanation.to_string();
        assert!(text.contains("derived via"));
        assert!(text.contains("(county = ramsey)"));
    }

    #[test]
    fn refuses_to_explain_non_matches() {
        let (r, s, config) = example3();
        let err = explain_match(
            &r,
            &r.tuples()[0], // itsgreek
            &s,
            &s.tuples()[1], // anjuman
            &config,
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn renders_the_plan_tree() {
        let (r, s, config) = example3();
        let matcher = crate::matcher::EntityMatcher::new(r, s, config).unwrap();
        let plan = matcher.plan().unwrap();
        let text = render_plan(&plan);
        assert!(text.starts_with("match plan — arm "), "{text}");
        assert!(text.contains("  mode: "), "{text}");
        assert!(text.contains("[probe "), "{text}");
        assert!(text.contains("blocking key"), "{text}");
        assert!(text.contains("classify"), "{text}");
        // Probe nodes sit deeper than the block stage they consume.
        let block_line = text
            .lines()
            .find(|l| l.contains("block-index"))
            .map(String::from);
        let probe_line = text
            .lines()
            .find(|l| l.contains("[probe "))
            .map(String::from);
        if let (Some(b), Some(p)) = (block_line, probe_line) {
            let ind = |l: &str| l.len() - l.trim_start().len();
            assert!(ind(&p) > ind(&b), "{text}");
        }
    }

    #[test]
    fn renders_vector_scan_nodes_with_shape_lanes_and_tile() {
        use crate::plan::{ArmHint, ExecMode, PlanNode, RuleFamily, RuleRef};
        let plan = MatchPlan {
            nodes: vec![PlanNode {
                id: 0,
                kind: PlanNodeKind::VectorScan {
                    rule: RuleRef {
                        family: RuleFamily::Distinct,
                        index: 0,
                        name: "ilfd".into(),
                    },
                    shape: eid_rules::KernelShape::Disagree,
                    lanes: 16,
                    tile_rows: 65536,
                    key_positions: vec![1],
                },
                label: "vector-scan(ilfd)".into(),
                why: "disagreement drivers masked a column chunk at a time".into(),
                span: "match/engine/refute/ilfd".into(),
                inputs: vec![],
            }],
            mode: ExecMode::Serial { auto_small: false },
            mode_why: "test".into(),
            arm: ArmHint::Auto,
            index_free: false,
            record_identity: true,
            record_distinct: true,
        };
        let text = render_plan(&plan);
        assert!(text.contains("[vector disagree ×16, tile 65536]"), "{text}");
        assert!(text.contains("disagreement drivers"), "{text}");
    }

    #[test]
    fn underivable_attribute_is_an_error() {
        let (r, s, mut config) = example3();
        config.ilfds = eid_ilfd::IlfdSet::new();
        let err = explain_match(&r, &r.tuples()[0], &s, &s.tuples()[0], &config).unwrap_err();
        assert!(err.to_string().contains("underivable"));
    }
}
