//! Match explanations: *why* does the engine say two tuples model
//! the same entity — and *how* would it go about deciding?
//!
//! Soundness is the paper's non-negotiable property, and a sound
//! system should be able to justify its declarations. An explanation
//! for a matching pair consists of, per extended-key attribute and
//! per side, either the base value ("given") or the chain of ILFDs
//! that derived it (the SLD proof trace from
//! [`eid_ilfd::horn::HornProgram::prove_goal_trace`]), ending with
//! the extended-key equality itself.
//!
//! The same module renders the *prospective* explanation:
//! [`render_plan`] turns a [`MatchPlan`] into the indented text tree
//! behind `eid plan` — which blocking keys the cost model picked,
//! which rules scan, and why. Its retrospective twin,
//! [`render_plan_analyzed`], joins an executed run's per-node actuals
//! (wall time, candidate pairs, rows out, kernel batches) back
//! against the planner's estimates — EXPLAIN ANALYZE for `eid plan
//! --analyze`.

use std::fmt;

use eid_ilfd::horn::HornProgram;
use eid_ilfd::{PropSymbol, SymbolSet};
use eid_obs::json::str_literal;
use eid_obs::MatchReport;
use eid_relational::{AttrName, Relation, Tuple, Value};

use crate::error::{CoreError, Result};
use crate::matcher::MatchConfig;
use crate::plan::{MatchPlan, PlanNode, PlanNodeKind, ProbeStrategy};
use crate::stats::node_counter;

/// How one extended-key attribute value came to be known.
#[derive(Debug, Clone, PartialEq)]
pub enum Support {
    /// The value is stored in the source tuple.
    Given,
    /// The value was derived; the strings render the ILFD chain in
    /// application order.
    Derived(Vec<String>),
}

/// One attribute's justification on one side.
#[derive(Debug, Clone)]
pub struct AttributeSupport {
    /// The extended-key attribute.
    pub attr: AttrName,
    /// The (non-NULL) value both sides agree on.
    pub value: Value,
    /// Justification for the `R` tuple's value.
    pub r_support: Support,
    /// Justification for the `S` tuple's value.
    pub s_support: Support,
}

/// A full explanation of a matching pair.
#[derive(Debug, Clone)]
pub struct MatchExplanation {
    /// Per extended-key attribute, the agreed value and its support.
    pub attributes: Vec<AttributeSupport>,
}

impl fmt::Display for MatchExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "the tuples agree on every extended-key attribute:")?;
        for a in &self.attributes {
            writeln!(f, "  {} = {}", a.attr, a.value)?;
            for (side, support) in [("R", &a.r_support), ("S", &a.s_support)] {
                match support {
                    Support::Given => writeln!(f, "    {side}: given")?,
                    Support::Derived(chain) => {
                        writeln!(f, "    {side}: derived via")?;
                        for step in chain {
                            writeln!(f, "      {step}")?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Renders a [`MatchPlan`] as an indented text tree — the default
/// output of `eid plan`.
///
/// One line per node, indented by pipeline depth (a node sits one
/// level below the deepest node it consumes), with the probe
/// strategy and the cost model's rationale inline:
///
/// ```text
/// match plan — arm blocked, mode serial(auto-small)
///   mode: auto: 20 estimated pairs < 50000 — serial
///   derive(R) — extend R with missing extended-key attributes …
///   derive(S) — …
///     encode — intern 2+2 rows into columnar u32 symbols …
///       block-index — build symbol-keyed inverted indexes …
///         probe(key-eq) [probe 0,1] — blocking key ⟨name, cuisine⟩ …
///         scan(ilfd-1!) [scan] — …
///           dedup — first-occurrence dedup of raw pair lists …
///             classify — Figure-3 partition …
/// ```
pub fn render_plan(plan: &MatchPlan) -> String {
    let depth = node_depths(plan);
    let mut out = format!(
        "match plan — arm {}, mode {}\n  mode: {}\n  emit: {}: {}\n  stats: {}\n",
        plan.arm.arm_label(plan.index_free, plan.mode.workers()),
        plan.mode_display(),
        plan.mode_why,
        plan.emit.display(),
        plan.emit_why,
        plan.stats_source.as_str()
    );
    for node in &plan.nodes {
        let indent = "  ".repeat(depth.get(node.id).copied().unwrap_or(0) + 1);
        out.push_str(&format!(
            "{indent}{}{} — {}\n",
            node.label,
            strategy_suffix(node),
            node.why
        ));
    }
    out
}

/// Pipeline depth per node id (a node sits one level below the
/// deepest node it consumes).
fn node_depths(plan: &MatchPlan) -> Vec<usize> {
    let mut depth = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        let d = node
            .inputs
            .iter()
            .filter_map(|i| depth.get(*i).copied())
            .max()
            .map_or(0, |d| d + 1);
        if let Some(slot) = depth.get_mut(node.id) {
            *slot = d;
        }
    }
    depth
}

/// The bracketed strategy annotation after a node label, e.g.
/// ` [probe 0,1]` or ` [vector disagree ×16, tile 65536]`.
fn strategy_suffix(node: &PlanNode) -> String {
    match &node.kind {
        PlanNodeKind::IdentityProbe { strategy, .. } | PlanNodeKind::Refute { strategy, .. } => {
            match strategy {
                ProbeStrategy::Probe { key_positions } => {
                    let cols: Vec<String> = key_positions.iter().map(|p| p.to_string()).collect();
                    format!(" [probe {}]", cols.join(","))
                }
                ProbeStrategy::Cross => " [cross]".to_string(),
                ProbeStrategy::Scan => " [scan]".to_string(),
            }
        }
        PlanNodeKind::VectorScan {
            shape,
            lanes,
            tile_rows,
            ..
        } => {
            format!(" [vector {} ×{lanes}, tile {tile_rows}]", shape.as_str())
        }
        PlanNodeKind::Sink { shards } => format!(" [streamed, {shards} shards]"),
        _ => String::new(),
    }
}

/// Drift threshold for EXPLAIN ANALYZE: a probe/refute/vector node
/// counts as *drifted* when its actual candidate volume differs from
/// the planner's estimate by more than this factor, in either
/// direction.
pub const DRIFT_FACTOR: u64 = 4;

/// Candidate-volume floor below which a node never counts as drifted.
/// Tiny nodes are all noise; `plan/drift_nodes` exists so planner
/// tests can assert the cost model held at real volumes.
pub const DRIFT_MIN_PAIRS: u64 = 1024;

/// One executed plan node's actuals, joined from the run report's
/// `plan/node/<id>/*` counters.
struct NodeActuals {
    nanos: u64,
    tasks: u64,
    batches: u64,
    /// Candidate volume: probe candidates, or residual pairs visited.
    pairs: u64,
    /// Rows out: accepted candidates, or residual matched + refuted.
    out: u64,
}

fn actuals_of(report: &MatchReport, id: usize) -> NodeActuals {
    let c = |what: &str| report.counter(&node_counter(id, what));
    NodeActuals {
        nanos: c("nanos"),
        tasks: c("tasks"),
        batches: c("batches"),
        pairs: c("candidates") + c("pairs"),
        out: c("accepted") + c("matched") + c("refuted"),
    }
}

/// Whether an estimate/actual pair differs by more than
/// [`DRIFT_FACTOR`]× at meaningful volume.
fn drifted(est: u64, actual: u64) -> bool {
    let (lo, hi) = if est <= actual {
        (est, actual)
    } else {
        (actual, est)
    };
    hi >= DRIFT_MIN_PAIRS && hi > lo.saturating_mul(DRIFT_FACTOR)
}

/// Whether one node drifted: it carries an estimate, actually
/// executed (fused scan nodes report under the first scan node, so
/// the others have no tasks), and the volumes disagree.
fn node_drifted(node: &PlanNode, a: &NodeActuals) -> bool {
    node.est_pairs
        .is_some_and(|est| a.tasks > 0 && drifted(est, a.pairs))
}

/// Counts the plan nodes whose actual candidate volume drifted ≥
/// [`DRIFT_FACTOR`]× from the planner's estimate — the value the
/// matcher publishes as `plan/drift_nodes`.
pub fn drift_nodes(plan: &MatchPlan, report: &MatchReport) -> u64 {
    plan.nodes
        .iter()
        .filter(|n| node_drifted(n, &actuals_of(report, n.id)))
        .count() as u64
}

/// Renders a nanosecond quantity human-readably (no padding).
fn fmt_time(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// EXPLAIN ANALYZE: [`render_plan`]'s tree with estimated-vs-actual
/// columns joined from an executed run's [`MatchReport`] — per node,
/// the planner's candidate-pair estimate against the measured
/// candidate pairs, rows out, kernel batches, and wall time (busy
/// time summed across workers for executed nodes, the stage span for
/// pipeline stages). Nodes whose volume drifted ≥ [`DRIFT_FACTOR`]×
/// are flagged, and the footer totals them — the same number the run
/// publishes as `plan/drift_nodes`.
pub fn render_plan_analyzed(plan: &MatchPlan, report: &MatchReport) -> String {
    let depth = node_depths(plan);
    let mut out = format!(
        "match plan — arm {}, mode {} (analyzed)\n  mode: {}\n",
        plan.arm.arm_label(plan.index_free, plan.mode.workers()),
        plan.mode_display(),
        plan.mode_why
    );
    out.push_str(&format!(
        "  {:<44} {:>12} {:>12} {:>10} {:>8} {:>12}\n",
        "node", "est pairs", "act pairs", "rows out", "batches", "time"
    ));
    let mut drift_count = 0u64;
    for node in &plan.nodes {
        let indent = "  ".repeat(depth.get(node.id).copied().unwrap_or(0));
        let name = format!("{indent}{}{}", node.label, strategy_suffix(node));
        let a = actuals_of(report, node.id);
        let executed = a.tasks > 0;
        let nanos = if executed {
            a.nanos
        } else {
            report.stage_nanos(&node.span).unwrap_or(0)
        };
        let num = |v: u64, show: bool| -> String {
            if show {
                v.to_string()
            } else {
                "-".into()
            }
        };
        let drift = node_drifted(node, &a);
        if drift {
            drift_count += 1;
        }
        out.push_str(&format!(
            "  {:<44} {:>12} {:>12} {:>10} {:>8} {:>12}{}\n",
            name,
            node.est_pairs
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            num(a.pairs, executed),
            num(a.out, executed),
            num(a.batches, executed && a.batches > 0),
            fmt_time(nanos),
            if drift { "  <- drift" } else { "" }
        ));
    }
    out.push_str(&format!(
        "  drift: {drift_count} node(s) ≥ ×{DRIFT_FACTOR} off estimate\n"
    ));
    out
}

/// JSON twin of [`render_plan_analyzed`]: the plan document plus an
/// `analyze` section with per-node actuals and the drift total,
/// joinable to the plan nodes by id.
pub fn plan_analyzed_json(plan: &MatchPlan, report: &MatchReport) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n\"plan\": ");
    out.push_str(plan.to_json().trim_end());
    out.push_str(",\n\"analyze\": {\n  \"nodes\": [");
    let mut drift_count = 0u64;
    for (i, node) in plan.nodes.iter().enumerate() {
        let a = actuals_of(report, node.id);
        let executed = a.tasks > 0;
        let nanos = if executed {
            a.nanos
        } else {
            report.stage_nanos(&node.span).unwrap_or(0)
        };
        let drift = node_drifted(node, &a);
        if drift {
            drift_count += 1;
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"label\": {}, \"est_pairs\": {}, \"executed\": {executed}, \
             \"nanos\": {nanos}, \"tasks\": {}, \"pairs\": {}, \"rows_out\": {}, \
             \"batches\": {}, \"drift\": {drift}}}",
            node.id,
            str_literal(&node.label),
            node.est_pairs
                .map_or_else(|| "null".to_string(), |e| e.to_string()),
            a.tasks,
            a.pairs,
            a.out,
            a.batches,
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"drift_factor\": {DRIFT_FACTOR},\n  \"drift_nodes\": {drift_count}\n}}\n}}\n"
    ));
    out
}

/// Explains why `r_tuple` and `s_tuple` satisfy extended-key
/// equivalence under `config`. Returns an error if they do not (the
/// pair would not be in the matching table).
pub fn explain_match(
    r: &Relation,
    r_tuple: &Tuple,
    s: &Relation,
    s_tuple: &Tuple,
    config: &MatchConfig,
) -> Result<MatchExplanation> {
    let program = HornProgram::from_ilfds(&config.ilfds);
    let mut attributes = Vec::with_capacity(config.extended_key.len());
    for attr in config.extended_key.attrs() {
        let (r_value, r_support) = side_support(&program, r, r_tuple, attr)?;
        let (s_value, s_support) = side_support(&program, s, s_tuple, attr)?;
        if !r_value.non_null_eq(&s_value) {
            return Err(CoreError::ConsistencyViolation {
                pair: format!(
                    "explain_match: {attr} disagrees ({r_value} vs {s_value}) — the pair does not match"
                ),
            });
        }
        attributes.push(AttributeSupport {
            attr: attr.clone(),
            value: r_value,
            r_support,
            s_support,
        });
    }
    Ok(MatchExplanation { attributes })
}

/// Resolves one attribute on one side: a given value, or the unique
/// derivable value with its proof trace.
fn side_support(
    program: &HornProgram,
    rel: &Relation,
    tuple: &Tuple,
    attr: &AttrName,
) -> Result<(Value, Support)> {
    if let Some(v) = tuple.value_of(rel.schema(), attr) {
        if !v.is_null() {
            return Ok((v.clone(), Support::Given));
        }
    }
    // Derive: forward-chain from the tuple's facts, find the value(s)
    // the closure assigns to `attr`, then extract the SLD trace.
    let facts = SymbolSet::of_tuple(rel.schema(), tuple);
    let model = program.forward_chain(&facts);
    let candidates: Vec<&PropSymbol> = model
        .iter()
        .filter(|s| &s.attr == attr && !facts.contains(s))
        .collect();
    match candidates.as_slice() {
        [symbol] => {
            let trace = program
                .prove_goal_trace(symbol, &facts)
                .expect("closure member must be provable");
            let chain: Vec<String> = trace.iter().map(|c| c.to_string()).collect();
            Ok((symbol.value.clone(), Support::Derived(chain)))
        }
        [] => Err(CoreError::ConsistencyViolation {
            pair: format!("explain_match: {attr} is underivable for {tuple}"),
        }),
        _ => Err(CoreError::ConsistencyViolation {
            pair: format!("explain_match: conflicting derivations for {attr} of {tuple}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_datagen_is_not_a_dep::*;

    /// Local copy of the Example 3 fixtures (eid-datagen depends on
    /// eid-core, so we cannot use it here).
    mod eid_datagen_is_not_a_dep {
        use super::super::*;
        use eid_ilfd::{Ilfd, IlfdSet};
        use eid_relational::Schema;
        use eid_rules::ExtendedKey;

        pub fn example3() -> (Relation, Relation, MatchConfig) {
            let r_schema =
                Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
            let mut r = Relation::new(r_schema);
            r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
            r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
                .unwrap();

            let s_schema = Schema::of_strs(
                "S",
                &["name", "speciality", "county"],
                &["name", "speciality"],
            )
            .unwrap();
            let mut s = Relation::new(s_schema);
            s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
            s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
                .unwrap();

            let ilfds: IlfdSet = vec![
                Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
                Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
                Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
                Ilfd::of_strs(
                    &[("name", "itsgreek"), ("county", "ramsey")],
                    &[("speciality", "gyros")],
                ),
            ]
            .into_iter()
            .collect();
            let config = MatchConfig::new(
                ExtendedKey::of_strs(&["name", "cuisine", "speciality"]),
                ilfds,
            );
            (r, s, config)
        }
    }

    #[test]
    fn explains_the_itsgreek_chain() {
        let (r, s, config) = example3();
        let explanation = explain_match(
            &r,
            &r.tuples()[0], // itsgreek
            &s,
            &s.tuples()[0],
            &config,
        )
        .unwrap();
        assert_eq!(explanation.attributes.len(), 3);

        // name: given on both sides.
        assert_eq!(explanation.attributes[0].r_support, Support::Given);
        assert_eq!(explanation.attributes[0].s_support, Support::Given);

        // cuisine: given in R, derived in S via one ILFD.
        let cuisine = &explanation.attributes[1];
        assert_eq!(cuisine.r_support, Support::Given);
        match &cuisine.s_support {
            Support::Derived(chain) => assert_eq!(chain.len(), 1),
            other => panic!("expected derivation, got {other:?}"),
        }

        // speciality: derived in R via the two-step I7→I8 chain.
        let speciality = &explanation.attributes[2];
        match &speciality.r_support {
            Support::Derived(chain) => {
                assert_eq!(chain.len(), 2, "{chain:?}");
                assert!(chain[0].contains("county = ramsey"));
                assert!(chain[1].contains("speciality = gyros"));
            }
            other => panic!("expected derivation, got {other:?}"),
        }
        // Rendering mentions the chain.
        let text = explanation.to_string();
        assert!(text.contains("derived via"));
        assert!(text.contains("(county = ramsey)"));
    }

    #[test]
    fn refuses_to_explain_non_matches() {
        let (r, s, config) = example3();
        let err = explain_match(
            &r,
            &r.tuples()[0], // itsgreek
            &s,
            &s.tuples()[1], // anjuman
            &config,
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn renders_the_plan_tree() {
        let (r, s, config) = example3();
        let matcher = crate::matcher::EntityMatcher::new(r, s, config).unwrap();
        let plan = matcher.plan().unwrap();
        let text = render_plan(&plan);
        assert!(text.starts_with("match plan — arm "), "{text}");
        assert!(text.contains("  mode: "), "{text}");
        assert!(text.contains("[probe "), "{text}");
        assert!(text.contains("blocking key"), "{text}");
        assert!(text.contains("classify"), "{text}");
        // Probe nodes sit deeper than the block stage they consume.
        let block_line = text
            .lines()
            .find(|l| l.contains("block-index"))
            .map(String::from);
        let probe_line = text
            .lines()
            .find(|l| l.contains("[probe "))
            .map(String::from);
        if let (Some(b), Some(p)) = (block_line, probe_line) {
            let ind = |l: &str| l.len() - l.trim_start().len();
            assert!(ind(&p) > ind(&b), "{text}");
        }
    }

    #[test]
    fn renders_vector_scan_nodes_with_shape_lanes_and_tile() {
        use crate::plan::{ArmHint, ExecMode, PlanNode, RuleFamily, RuleRef, StatsSource};
        let plan = MatchPlan {
            nodes: vec![PlanNode {
                id: 0,
                kind: PlanNodeKind::VectorScan {
                    rule: RuleRef {
                        family: RuleFamily::Distinct,
                        index: 0,
                        name: "ilfd".into(),
                    },
                    shape: eid_rules::KernelShape::Disagree,
                    lanes: 16,
                    tile_rows: 65536,
                    key_positions: vec![1],
                },
                label: "vector-scan(ilfd)".into(),
                why: "disagreement drivers masked a column chunk at a time".into(),
                span: "match/engine/refute/ilfd".into(),
                inputs: vec![],
                est_pairs: Some(161_000),
            }],
            mode: ExecMode::Serial { auto_small: false },
            mode_why: "test".into(),
            arm: ArmHint::Auto,
            index_free: false,
            record_identity: true,
            record_distinct: true,
            emit: crate::plan::Emit::buffered(),
            emit_why: "test".into(),
            stats_source: StatsSource::default(),
        };
        let text = render_plan(&plan);
        assert!(text.contains("[vector disagree ×16, tile 65536]"), "{text}");
        assert!(text.contains("disagreement drivers"), "{text}");
    }

    #[test]
    fn analyzed_render_joins_estimates_and_actuals() {
        let (r, s, config) = example3();
        let matcher = crate::matcher::EntityMatcher::new(r, s, config).unwrap();
        let outcome = matcher.run().unwrap();
        let plan = matcher.plan().unwrap();
        let text = render_plan_analyzed(&plan, &outcome.stats);
        assert!(text.contains("(analyzed)"), "{text}");
        assert!(text.contains("est pairs"), "{text}");
        assert!(text.contains("act pairs"), "{text}");
        assert!(text.lines().last().unwrap().contains("drift:"), "{text}");
        // 2×2 rows: nothing is near DRIFT_MIN_PAIRS, so the cost
        // model cannot be flagged here.
        assert_eq!(drift_nodes(&plan, &outcome.stats), 0);
        let json = plan_analyzed_json(&plan, &outcome.stats);
        assert!(json.contains("\"analyze\""), "{json}");
        assert!(json.contains("\"drift_nodes\": 0"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn drift_needs_volume_and_factor() {
        assert!(!drifted(10, 100), "below DRIFT_MIN_PAIRS is noise");
        assert!(drifted(100, 10_000));
        assert!(drifted(10_000, 100), "either direction");
        assert!(!drifted(1000, 2000), "×2 is within tolerance");
        assert!(!drifted(0, 0));
        assert!(drifted(0, 5000), "estimated nothing, got a flood");
    }

    #[test]
    fn underivable_attribute_is_an_error() {
        let (r, s, mut config) = example3();
        config.ilfds = eid_ilfd::IlfdSet::new();
        let err = explain_match(&r, &r.tuples()[0], &s, &s.tuples()[0], &config).unwrap_err();
        assert!(err.to_string().contains("underivable"));
    }
}
