//! Vectorized predicate kernels over interned symbol columns.
//!
//! After interning (PR 3) every hot predicate is a `u32` compare
//! against a contiguous column slice — exactly the shape SIMD
//! rewards. This module evaluates a conjunction of per-column terms
//! ([`Term`]) against [`LANES`] rows at a time and returns a bitmask
//! of the rows where every term holds.
//!
//! Two implementations produce **bit-identical** masks:
//!
//! * a portable chunked-scalar path written so the compiler can
//!   autovectorize it (fixed-width windows, branch-free mask
//!   accumulation), the guaranteed fallback on every target;
//! * an explicit AVX2 path behind `std::arch` runtime feature
//!   detection (`is_x86_feature_detected!`), used only when the CPU
//!   reports the feature at startup.
//!
//! Three-valued semantics are preserved by construction: [`NULL_SYM`]
//! is id 0, every kernel-eligible constant is non-NULL (see
//! [`eid_rules::KernelShape`]), so an `Eq` term can never match a
//! NULL cell for free, and a `Ne` term masks NULL cells out
//! explicitly (`v ≠ c` is *unknown*, not true, when `v` is NULL).
//! `-0.0` needs no handling here at all — the interner already folded
//! it into `0.0`'s symbol.
//!
//! The `EID_KERNELS` environment variable steers the defaults
//! (values are case-insensitive): `off`/`0`/`false` disables kernel
//! dispatch in the planner ([`enabled_default`]),
//! `scalar`/`portable` keeps dispatch on but forces the portable
//! path (for A/B-testing the AVX2 twin), and `on`/`1`/`true`/`auto`
//! spell out the default. Anything else warns once on stderr and
//! falls back to the default.

use std::ops::Range;
use std::sync::OnceLock;

use eid_relational::{Sym, NULL_SYM};

/// Rows compared per kernel chunk. One bit of a [`Mask`] per lane.
pub const LANES: usize = 16;

/// Result of one chunk evaluation: bit `l` set ⇔ lane `l` matched.
pub type Mask = u16;

/// A [`Mask`] with every lane set.
pub const FULL_MASK: Mask = Mask::MAX;

/// L2 budget one residual tile of `S`-side columns should fit in.
/// Half of a conservative 512 KiB L2: the driver side's working set,
/// output buffers, and indexes want the rest.
pub const L2_TILE_BYTES: usize = 256 * 1024;

/// How one term compares a column cell against its symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermOp {
    /// `cell == sym`. The symbol must be non-NULL, which makes the
    /// test NULL-safe for free (`NULL_SYM` never equals it).
    Eq,
    /// `cell != sym && cell != NULL_SYM` — three-valued `≠`.
    Ne,
}

/// One conjunct of a kernel evaluation: a column slice compared
/// against a fixed symbol. The symbol must be non-NULL (kernel
/// eligibility guarantees it).
#[derive(Debug, Clone, Copy)]
pub struct Term<'a> {
    /// The column the term reads, contiguous over all rows.
    pub col: &'a [Sym],
    /// The symbol compared against (driver-row gather or constant).
    pub sym: Sym,
    /// The comparison.
    pub op: TermOp,
}

impl Term<'_> {
    /// Scalar evaluation of one row — the reference semantics every
    /// kernel path must reproduce bit-for-bit.
    #[inline]
    pub fn test(&self, j: usize) -> bool {
        let v = self.col[j];
        match self.op {
            TermOp::Eq => v == self.sym,
            TermOp::Ne => v != self.sym && v != NULL_SYM,
        }
    }
}

/// Work accounting for one kernel user: how much ran wide and how
/// much fell back to scalar tails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// Kernel invocations (one scan over a row range or gather batch).
    pub batches: u64,
    /// Rows evaluated in full [`LANES`]-wide chunks.
    pub lane_rows: u64,
    /// Rows evaluated by the scalar tail (range length not a multiple
    /// of [`LANES`], or a short gather batch).
    pub scalar_tail: u64,
}

impl KernelTally {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &KernelTally) {
        self.batches += other.batches;
        self.lane_rows += other.lane_rows;
        self.scalar_tail += other.scalar_tail;
    }

    /// Whether any kernel work was recorded.
    pub fn is_zero(&self) -> bool {
        self.batches == 0 && self.lane_rows == 0 && self.scalar_tail == 0
    }
}

/// `EID_KERNELS`, lowercased and trimmed, read (and validated) once
/// per process. Unrecognized values warn once on stderr and behave
/// like an unset variable, so a typo degrades to the default instead
/// of silently flipping a mode.
fn kernels_env() -> Option<&'static str> {
    static ENV: OnceLock<Option<String>> = OnceLock::new();
    ENV.get_or_init(|| {
        let raw = std::env::var("EID_KERNELS").ok()?;
        let norm = raw.trim().to_ascii_lowercase();
        match norm.as_str() {
            "off" | "0" | "false" | "scalar" | "portable" | "on" | "1" | "true" | "auto" => {
                Some(norm)
            }
            _ => {
                eprintln!(
                    "warning: unrecognized EID_KERNELS value {raw:?} \
                     (expected off|0|false, scalar|portable, or on|1|true|auto); \
                     using the default"
                );
                None
            }
        }
    })
    .as_deref()
}

/// Whether planner kernel dispatch is on by default
/// (`EID_KERNELS=off|0|false`, case-insensitive, turns it off). Read
/// once per process.
pub fn enabled_default() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| !matches!(kernels_env(), Some("off") | Some("0") | Some("false")))
}

/// Whether `EID_KERNELS=scalar|portable` pins the portable path.
fn force_portable() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| matches!(kernels_env(), Some("scalar") | Some("portable")))
}

/// Runtime dispatch decision: AVX2 detected and not pinned portable.
#[cfg(target_arch = "x86_64")]
fn use_avx2() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| !force_portable() && std::arch::is_x86_feature_detected!("avx2"))
}

/// The instruction set the kernels will run with on this host.
pub fn simd_level() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return "avx2";
    }
    "portable"
}

/// Portable chunk evaluation of one term: window of [`LANES`] rows at
/// `j0`, branch-free per lane so the loop autovectorizes.
///
/// The caller must guarantee `j0 + LANES <= t.col.len()`.
#[inline]
fn term_chunk_portable(t: &Term<'_>, j0: usize) -> Mask {
    let w = &t.col[j0..j0 + LANES];
    let mut m: Mask = 0;
    match t.op {
        TermOp::Eq => {
            for (l, &v) in w.iter().enumerate() {
                m |= Mask::from(v == t.sym) << l;
            }
        }
        TermOp::Ne => {
            for (l, &v) in w.iter().enumerate() {
                m |= Mask::from(v != t.sym && v != NULL_SYM) << l;
            }
        }
    }
    m
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Mask, Term, TermOp, LANES};

    /// AVX2 twin of `term_chunk_portable`: two 8-lane compares plus
    /// float-lane movemasks. Bit-identical to the portable path.
    ///
    /// # Safety
    /// Requires AVX2 (enforced by the caller via runtime detection)
    /// and `j0 + LANES <= t.col.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn term_chunk(t: &Term<'_>, j0: usize) -> Mask {
        use std::arch::x86_64::*;
        debug_assert!(j0 + LANES <= t.col.len());
        let p = t.col.as_ptr().add(j0);
        let lo = _mm256_loadu_si256(p as *const __m256i);
        let hi = _mm256_loadu_si256(p.add(8) as *const __m256i);
        let sym = _mm256_set1_epi32(t.sym as i32);
        let eq = |a: __m256i, b: __m256i| {
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))) as u32
        };
        let is_sym = (eq(lo, sym) | (eq(hi, sym) << 8)) as Mask;
        match t.op {
            TermOp::Eq => is_sym,
            TermOp::Ne => {
                let zero = _mm256_setzero_si256();
                let is_null = (eq(lo, zero) | (eq(hi, zero) << 8)) as Mask;
                !is_sym & !is_null
            }
        }
    }
}

/// Evaluates the conjunction of `terms` over the [`LANES`]-row chunk
/// at `j0`, returning the lanes where every term holds. Short-circuits
/// on an all-zero intermediate mask.
///
/// Every term's column must satisfy `j0 + LANES <= col.len()`.
#[inline]
pub fn conj_chunk(terms: &[Term<'_>], j0: usize) -> Mask {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        let mut m: Mask = FULL_MASK;
        for t in terms {
            if m == 0 {
                break;
            }
            // SAFETY: use_avx2() gates on runtime feature detection;
            // the caller guarantees the window bound.
            m &= unsafe { avx2::term_chunk(t, j0) };
        }
        return m;
    }
    let mut m: Mask = FULL_MASK;
    for t in terms {
        if m == 0 {
            break;
        }
        m &= term_chunk_portable(t, j0);
    }
    m
}

/// Scans `rows` (a contiguous range of row ids shared by every term's
/// column) for rows where all of `terms` hold, invoking `emit` with
/// each matching row id in ascending order. Full chunks run through
/// [`conj_chunk`]; the sub-[`LANES`] tail runs scalar.
pub fn conj_scan(
    terms: &[Term<'_>],
    rows: Range<usize>,
    tally: &mut KernelTally,
    mut emit: impl FnMut(u32),
) {
    tally.batches += 1;
    let mut j = rows.start;
    while j + LANES <= rows.end {
        let mut m = conj_chunk(terms, j);
        tally.lane_rows += LANES as u64;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            emit((j + l) as u32);
            m &= m - 1;
        }
        j += LANES;
    }
    while j < rows.end {
        tally.scalar_tail += 1;
        if terms.iter().all(|t| t.test(j)) {
            emit(j as u32);
        }
        j += 1;
    }
}

/// Disagreement driver mask: appends to `out` every row of `col`
/// whose symbol is neither `c` nor NULL, in ascending order — the
/// rows that *definitely* disagree with the constant.
pub fn disagree_rows(col: &[Sym], c: Sym, tally: &mut KernelTally, out: &mut Vec<u32>) {
    let term = Term {
        col,
        sym: c,
        op: TermOp::Ne,
    };
    conj_scan(&[term], 0..col.len(), tally, |row| out.push(row));
}

/// Gather variant of [`disagree_rows`] for pre-filtered (non-dense)
/// driver candidates: keeps the rows of `rows` whose `col` symbol
/// definitely disagrees with `c`, preserving order. Candidate symbols
/// are gathered into a small aligned buffer and compared a chunk at a
/// time.
pub fn gather_disagree(
    col: &[Sym],
    c: Sym,
    rows: &[u32],
    tally: &mut KernelTally,
    out: &mut Vec<u32>,
) {
    tally.batches += 1;
    let mut buf = [NULL_SYM; LANES];
    for chunk in rows.chunks(LANES) {
        if chunk.len() == LANES {
            for (slot, &row) in buf.iter_mut().zip(chunk) {
                *slot = col[row as usize];
            }
            let term = Term {
                col: &buf,
                sym: c,
                op: TermOp::Ne,
            };
            let mut m = conj_chunk(&[term], 0);
            tally.lane_rows += LANES as u64;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                out.push(chunk[l]);
                m &= m - 1;
            }
        } else {
            for &row in chunk {
                tally.scalar_tail += 1;
                let v = col[row as usize];
                if v != c && v != NULL_SYM {
                    out.push(row);
                }
            }
        }
    }
}

/// Rows per cache tile: how many `S`-side rows of `active_cols`
/// 4-byte symbol columns fit in [`L2_TILE_BYTES`], rounded down to a
/// multiple of [`LANES`] (minimum one chunk).
pub fn tile_rows(active_cols: usize) -> usize {
    let per_row = std::mem::size_of::<Sym>() * active_cols.max(1);
    (L2_TILE_BYTES / per_row / LANES).max(1) * LANES
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A column exercising every interesting symbol class: NULLs,
    /// the probe symbol, near-misses, and repeats across chunk
    /// boundaries.
    fn column(len: usize) -> Vec<Sym> {
        (0..len)
            .map(|i| match i % 7 {
                0 => NULL_SYM,
                1 | 4 => 3,
                2 => 5,
                _ => (i % 11) as Sym,
            })
            .collect()
    }

    fn scalar_scan(terms: &[Term<'_>], rows: Range<usize>) -> Vec<u32> {
        rows.filter(|&j| terms.iter().all(|t| t.test(j)))
            .map(|j| j as u32)
            .collect()
    }

    #[test]
    fn conj_scan_matches_scalar_reference_on_all_range_offsets() {
        let col_a = column(103);
        let col_b: Vec<Sym> = (0..103).map(|i| (i % 5) as Sym).collect();
        for (ops, syms) in [
            ([TermOp::Eq, TermOp::Eq], [3, 2]),
            ([TermOp::Ne, TermOp::Eq], [3, 2]),
            ([TermOp::Ne, TermOp::Ne], [5, 0]),
        ] {
            let terms = [
                Term {
                    col: &col_a,
                    sym: syms[0],
                    op: ops[0],
                },
                Term {
                    col: &col_b,
                    sym: syms[1],
                    op: ops[1],
                },
            ];
            for start in [0usize, 1, 15, 16, 17] {
                for end in [start, start + 1, 64, 95, 103] {
                    if end < start {
                        continue;
                    }
                    let mut got = Vec::new();
                    let mut tally = KernelTally::default();
                    conj_scan(&terms, start..end, &mut tally, |r| got.push(r));
                    assert_eq!(got, scalar_scan(&terms, start..end), "range {start}..{end}");
                    let total = tally.lane_rows + tally.scalar_tail;
                    assert_eq!(total, (end - start) as u64, "coverage {start}..{end}");
                }
            }
        }
    }

    #[test]
    fn ne_terms_never_match_null_cells() {
        let col = vec![NULL_SYM; 40];
        let mut got = Vec::new();
        let mut tally = KernelTally::default();
        conj_scan(
            &[Term {
                col: &col,
                sym: 7,
                op: TermOp::Ne,
            }],
            0..col.len(),
            &mut tally,
            |r| got.push(r),
        );
        assert!(got.is_empty(), "NULL ≠ c must stay unknown: {got:?}");
    }

    #[test]
    fn disagree_rows_is_the_ne_scan() {
        let col = column(67);
        let mut got = Vec::new();
        let mut tally = KernelTally::default();
        disagree_rows(&col, 3, &mut tally, &mut got);
        let want: Vec<u32> = (0..col.len() as u32)
            .filter(|&r| col[r as usize] != 3 && col[r as usize] != NULL_SYM)
            .collect();
        assert_eq!(got, want);
        assert!(tally.batches > 0 && tally.lane_rows > 0);
    }

    #[test]
    fn gather_disagree_filters_sparse_rows_in_order() {
        let col = column(200);
        let rows: Vec<u32> = (0..200).step_by(3).map(|r| r as u32).collect();
        let mut got = Vec::new();
        let mut tally = KernelTally::default();
        gather_disagree(&col, 3, &rows, &mut tally, &mut got);
        let want: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|&r| col[r as usize] != 3 && col[r as usize] != NULL_SYM)
            .collect();
        assert_eq!(got, want);
        assert_eq!(tally.lane_rows + tally.scalar_tail, rows.len() as u64);
    }

    #[test]
    fn tile_rows_is_l2_sized_and_chunk_aligned() {
        assert_eq!(tile_rows(1), L2_TILE_BYTES / 4);
        assert_eq!(tile_rows(0), tile_rows(1));
        for cols in 1..12 {
            let t = tile_rows(cols);
            assert_eq!(t % LANES, 0, "tile for {cols} cols not chunk-aligned");
            assert!(t >= LANES);
            assert!(t * 4 * cols <= L2_TILE_BYTES + 4 * cols * LANES);
        }
    }

    /// The AVX2 twin (when the host has it) must agree with the
    /// portable path bit for bit. `conj_chunk` dispatches at runtime,
    /// so compare it against the portable reference directly.
    #[test]
    fn dispatched_chunks_agree_with_portable() {
        let col = column(160);
        for op in [TermOp::Eq, TermOp::Ne] {
            for sym in [0u32, 3, 5, 9999] {
                let term = Term { col: &col, sym, op };
                for j0 in (0..col.len() - LANES).step_by(5) {
                    assert_eq!(
                        conj_chunk(&[term], j0),
                        term_chunk_portable(&term, j0),
                        "op {op:?} sym {sym} at {j0} ({})",
                        simd_level()
                    );
                }
            }
        }
    }
}
