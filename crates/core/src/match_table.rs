//! Matching and negative matching tables (§3.2, §4.2).
//!
//! "Those pairs evaluating to *true* or *false* can be represented in
//! a matching table and a negative matching table, respectively.
//! Because each tuple has a unique identifier in its relation, a
//! matching (negative matching) table entry consists of the key
//! values of the pair of tuples." Entries must satisfy:
//!
//! * **Uniqueness constraint** — no tuple in either relation can be
//!   matched to more than one tuple in the other relation;
//! * **Consistency constraint** — no tuple pair can appear in both
//!   the matching and negative matching tables.

use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use eid_relational::{AttrName, FxHashSet, Relation, Schema, Tuple};

use crate::error::{CoreError, Result};
use crate::sink::PairSet;

/// One entry: the key projections of a matched (or provably
/// unmatched) tuple pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairEntry {
    /// Primary-key value of the `R` tuple.
    pub r_key: Tuple,
    /// Primary-key value of the `S` tuple.
    pub s_key: Tuple,
}

/// Row-index storage inside a compact table: an explicit pair list,
/// or the streamed sink's deduplicated bitset. The set form is what
/// lets the streamed convert step finish without ever materializing
/// the (potentially tens-of-MB) index list — it decodes straight to
/// entries if and when a consumer crosses into `Value`-land.
#[derive(Debug, Clone)]
enum PairIndexes {
    List(Vec<(u32, u32)>),
    Set {
        set: PairSet,
        /// Cached cardinality so `len` stays O(1).
        count: usize,
    },
}

impl PairIndexes {
    fn len(&self) -> usize {
        match self {
            PairIndexes::List(pairs) => pairs.len(),
            PairIndexes::Set { count, .. } => *count,
        }
    }
}

/// The blocked arm's zero-copy table backing: deduplicated row-index
/// pairs into two shared key pools (one projected key tuple per
/// *row*, not per pair). `MT_RS` and `NMT_RS` share the same pools.
#[derive(Debug, Clone)]
struct CompactPairs {
    pk_r: Arc<[Tuple]>,
    pk_s: Arc<[Tuple]>,
    pairs: PairIndexes,
}

impl CompactPairs {
    fn decode(&self) -> Vec<PairEntry> {
        let entry = |(i, j): (u32, u32)| PairEntry {
            r_key: self.pk_r[i as usize].clone(),
            s_key: self.pk_s[j as usize].clone(),
        };
        match &self.pairs {
            PairIndexes::List(pairs) => pairs.iter().copied().map(entry).collect(),
            PairIndexes::Set { set, .. } => set.to_pairs().into_iter().map(entry).collect(),
        }
    }
}

/// Entry storage: explicit entries, or the compact id-pair form that
/// decodes to entries only when somebody asks for `Value`-land.
#[derive(Debug, Clone)]
enum Backing {
    Rows(Vec<PairEntry>),
    Compact {
        pairs: CompactPairs,
        decoded: OnceCell<Vec<PairEntry>>,
    },
}

/// A table of tuple pairs keyed by their relations' primary keys —
/// used for both `MT_RS` and `NMT_RS`.
///
/// Two laziness layers keep the bulk path allocation-free:
///
/// * tables built by the blocked engine ([`PairTable::from_compact`])
///   store deduplicated *row-index pairs* plus shared per-row key
///   pools, and only decode to [`PairEntry`] rows on first access to
///   [`PairTable::entries`] (mutation also materializes first, so
///   the incremental matcher's [`PairTable::insert`] keeps working);
/// * the membership set backing [`PairTable::contains`] and the
///   per-insert dedup materializes from the entries on first use —
///   bulk producers never pay for tuple hashing.
#[derive(Debug, Clone)]
pub struct PairTable {
    r_key_attrs: Vec<AttrName>,
    s_key_attrs: Vec<AttrName>,
    backing: Backing,
    seen: OnceCell<FxHashSet<PairEntry>>,
}

impl PairTable {
    /// Creates an empty table over the given key attribute names.
    pub fn new(r_key_attrs: Vec<AttrName>, s_key_attrs: Vec<AttrName>) -> Self {
        PairTable {
            r_key_attrs,
            s_key_attrs,
            backing: Backing::Rows(Vec::new()),
            seen: OnceCell::new(),
        }
    }

    /// Creates a table in compact form: `pairs` are row indices into
    /// the shared key pools (`pk_r[i]` is row `i`'s primary-key
    /// projection). The caller guarantees `pairs` is duplicate-free —
    /// the blocked engine dedups on row-index pairs, which is exactly
    /// entry identity because a row has one key projection.
    pub fn from_compact(
        r_key_attrs: Vec<AttrName>,
        s_key_attrs: Vec<AttrName>,
        pk_r: Arc<[Tuple]>,
        pk_s: Arc<[Tuple]>,
        pairs: Vec<(u32, u32)>,
    ) -> Self {
        PairTable {
            r_key_attrs,
            s_key_attrs,
            backing: Backing::Compact {
                pairs: CompactPairs {
                    pk_r,
                    pk_s,
                    pairs: PairIndexes::List(pairs),
                },
                decoded: OnceCell::new(),
            },
            seen: OnceCell::new(),
        }
    }

    /// Creates a table whose row-index pairs are a deduplicated
    /// [`PairSet`] — the streamed sink's merged bitset. Nothing is
    /// decoded up front: the set decodes to ascending-order entries
    /// on first [`PairTable::entries`] access, so the bulk pipeline
    /// never pays for an explicit index list it may never read.
    pub fn from_compact_set(
        r_key_attrs: Vec<AttrName>,
        s_key_attrs: Vec<AttrName>,
        pk_r: Arc<[Tuple]>,
        pk_s: Arc<[Tuple]>,
        set: PairSet,
    ) -> Self {
        let count = set.count();
        PairTable {
            r_key_attrs,
            s_key_attrs,
            backing: Backing::Compact {
                pairs: CompactPairs {
                    pk_r,
                    pk_s,
                    pairs: PairIndexes::Set { set, count },
                },
                decoded: OnceCell::new(),
            },
            seen: OnceCell::new(),
        }
    }

    /// The membership set, materialized from the entries on first
    /// use.
    fn seen(&self) -> &FxHashSet<PairEntry> {
        self.seen.get_or_init(|| {
            let entries = self.entries();
            let mut set = FxHashSet::with_capacity_and_hasher(entries.len(), Default::default());
            set.extend(entries.iter().cloned());
            set
        })
    }

    /// Converts a compact backing into explicit rows before a
    /// mutation; no-op for row-backed tables.
    fn materialize(&mut self) {
        if let Backing::Compact { pairs, decoded } = &mut self.backing {
            let rows = decoded.take().unwrap_or_else(|| pairs.decode());
            self.backing = Backing::Rows(rows);
        }
    }

    /// `R`'s key attribute names.
    pub fn r_key_attrs(&self) -> &[AttrName] {
        &self.r_key_attrs
    }

    /// `S`'s key attribute names.
    pub fn s_key_attrs(&self) -> &[AttrName] {
        &self.s_key_attrs
    }

    /// Adds a pair (idempotent).
    pub fn insert(&mut self, r_key: Tuple, s_key: Tuple) -> bool {
        self.materialize();
        self.seen();
        let e = PairEntry { r_key, s_key };
        if self
            .seen
            .get_mut()
            .expect("just initialized")
            .insert(e.clone())
        {
            let Backing::Rows(entries) = &mut self.backing else {
                unreachable!("materialized above");
            };
            entries.push(e);
            true
        } else {
            false
        }
    }

    /// Appends entries the caller guarantees are pairwise distinct
    /// and absent from the table — the bulk path, which dedups
    /// upstream and so never needs per-entry tuple hashing here. If
    /// the membership set has already materialized it is kept in sync
    /// (and then still protects against duplicate inserts).
    pub fn extend_unique(&mut self, new: impl IntoIterator<Item = PairEntry>) {
        self.materialize();
        let Backing::Rows(entries) = &mut self.backing else {
            unreachable!("materialized above");
        };
        match self.seen.get_mut() {
            Some(seen) => {
                for e in new {
                    if seen.insert(e.clone()) {
                        entries.push(e);
                    }
                }
            }
            None => entries.extend(new),
        }
    }

    /// The entries in insertion order. On a compact table this
    /// decodes the row-index pairs (once) — the only place the
    /// blocked pipeline crosses back into `Value`-land.
    pub fn entries(&self) -> &[PairEntry] {
        match &self.backing {
            Backing::Rows(entries) => entries,
            Backing::Compact { pairs, decoded } => decoded.get_or_init(|| pairs.decode()),
        }
    }

    /// Number of pairs (compact tables answer without decoding).
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Rows(entries) => entries.len(),
            Backing::Compact { pairs, .. } => pairs.pairs.len(),
        }
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, r_key: &Tuple, s_key: &Tuple) -> bool {
        self.seen().contains(&PairEntry {
            r_key: r_key.clone(),
            s_key: s_key.clone(),
        })
    }

    /// Whether this table's pair set includes all of `other`'s —
    /// the monotonicity check's workhorse.
    pub fn includes(&self, other: &PairTable) -> bool {
        let seen = self.seen();
        other.entries().iter().all(|e| seen.contains(e))
    }

    /// Checks the **uniqueness constraint**: every `R` key maps to at
    /// most one `S` key and vice versa. The prototype performs this
    /// check after `setup_extkey` and prints "The extended key causes
    /// unsound matching result" on failure.
    pub fn verify_uniqueness(&self) -> Result<()> {
        let mut r_seen: HashMap<&Tuple, &Tuple> = HashMap::new();
        let mut s_seen: HashMap<&Tuple, &Tuple> = HashMap::new();
        for e in self.entries() {
            if let Some(prev) = r_seen.insert(&e.r_key, &e.s_key) {
                if prev != &e.s_key {
                    return Err(CoreError::UniquenessViolation {
                        side: "R",
                        key: e.r_key.to_string(),
                    });
                }
            }
            if let Some(prev) = s_seen.insert(&e.s_key, &e.r_key) {
                if prev != &e.r_key {
                    return Err(CoreError::UniquenessViolation {
                        side: "S",
                        key: e.s_key.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks the **consistency constraint** against a negative
    /// table: no pair may appear in both.
    pub fn verify_consistency(&self, negative: &PairTable) -> Result<()> {
        let negative_seen = negative.seen();
        for e in self.entries() {
            if negative_seen.contains(e) {
                return Err(CoreError::ConsistencyViolation {
                    pair: format!("({}, {})", e.r_key, e.s_key),
                });
            }
        }
        Ok(())
    }

    /// Renders the table as a relation whose attributes are the `R`
    /// key attributes (prefixed `r_`) followed by the `S` key
    /// attributes (prefixed `s_`), for printing in the prototype's
    /// format.
    pub fn to_relation(&self, name: &str) -> Result<Relation> {
        let mut names: Vec<String> = Vec::new();
        for a in &self.r_key_attrs {
            names.push(format!("r_{a}"));
        }
        for a in &self.s_key_attrs {
            names.push(format!("s_{a}"));
        }
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema: Arc<Schema> = Schema::of_strs(name, &name_refs, &name_refs)?;
        let mut rel = Relation::new_unchecked(schema);
        for e in self.entries() {
            rel.insert(e.r_key.concat(&e.s_key))?;
        }
        Ok(rel)
    }

    /// The set of `R` keys appearing in the table.
    pub fn r_keys(&self) -> HashSet<&Tuple> {
        self.entries().iter().map(|e| &e.r_key).collect()
    }

    /// The set of `S` keys appearing in the table.
    pub fn s_keys(&self) -> HashSet<&Tuple> {
        self.entries().iter().map(|e| &e.s_key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PairTable {
        PairTable::new(
            vec![AttrName::new("name"), AttrName::new("cuisine")],
            vec![AttrName::new("name"), AttrName::new("speciality")],
        )
    }

    fn compact_table() -> PairTable {
        let pk_r: Arc<[Tuple]> = vec![
            Tuple::of_strs(&["a", "x"]),
            Tuple::of_strs(&["b", "y"]),
            Tuple::of_strs(&["c", "z"]),
        ]
        .into();
        let pk_s: Arc<[Tuple]> =
            vec![Tuple::of_strs(&["a", "p"]), Tuple::of_strs(&["b", "q"])].into();
        PairTable::from_compact(
            vec![AttrName::new("name"), AttrName::new("cuisine")],
            vec![AttrName::new("name"), AttrName::new("speciality")],
            pk_r,
            pk_s,
            vec![(0, 0), (1, 1)],
        )
    }

    #[test]
    fn insert_dedups() {
        let mut t = table();
        assert!(t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"])
        ));
        assert!(!t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"])
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extend_unique_bulk_path_agrees_with_insert() {
        let a = PairEntry {
            r_key: Tuple::of_strs(&["a", "x"]),
            s_key: Tuple::of_strs(&["a", "p"]),
        };
        let b = PairEntry {
            r_key: Tuple::of_strs(&["b", "y"]),
            s_key: Tuple::of_strs(&["b", "q"]),
        };
        // Bulk append before the membership set materializes…
        let mut t = table();
        t.extend_unique([a.clone(), b.clone()]);
        assert_eq!(t.len(), 2);
        // …then membership and per-insert dedup still work.
        assert!(t.contains(&a.r_key, &a.s_key));
        assert!(!t.insert(b.r_key.clone(), b.s_key.clone()));
        // Bulk append after materialization keeps the set in sync
        // (and dedups defensively).
        t.extend_unique([a.clone()]);
        assert_eq!(t.len(), 2);
        let c = PairEntry {
            r_key: Tuple::of_strs(&["c", "z"]),
            s_key: Tuple::of_strs(&["c", "r"]),
        };
        t.extend_unique([c.clone()]);
        assert!(t.contains(&c.r_key, &c.s_key));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn compact_table_decodes_lazily_and_answers_len_without_decoding() {
        let t = compact_table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let entries = t.entries();
        assert_eq!(entries[0].r_key, Tuple::of_strs(&["a", "x"]));
        assert_eq!(entries[1].s_key, Tuple::of_strs(&["b", "q"]));
        assert!(t.contains(&Tuple::of_strs(&["a", "x"]), &Tuple::of_strs(&["a", "p"])));
        assert!(!t.contains(&Tuple::of_strs(&["c", "z"]), &Tuple::of_strs(&["a", "p"])));
    }

    #[test]
    fn compact_table_materializes_on_mutation() {
        let mut t = compact_table();
        // A duplicate of an existing compact pair is rejected…
        assert!(!t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"])));
        // …a fresh pair lands, and the table behaves like a row table.
        assert!(t.insert(Tuple::of_strs(&["c", "z"]), Tuple::of_strs(&["a", "p"])));
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries().len(), 3);
        assert!(t.verify_uniqueness().is_err()); // s key "a,p" used twice
    }

    #[test]
    fn uniqueness_ok_for_one_to_one() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert!(t.verify_uniqueness().is_ok());
    }

    #[test]
    fn uniqueness_violation_on_r_side() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["b", "q"]));
        let err = t.verify_uniqueness().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UniquenessViolation { side: "R", .. }
        ));
    }

    #[test]
    fn uniqueness_violation_on_s_side() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["c", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["c", "p"]));
        let err = t.verify_uniqueness().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UniquenessViolation { side: "S", .. }
        ));
    }

    #[test]
    fn consistency_detects_overlap() {
        let mut mt = table();
        mt.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        let mut nmt = table();
        nmt.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        assert!(mt.verify_consistency(&nmt).is_err());
        let empty = table();
        assert!(mt.verify_consistency(&empty).is_ok());
    }

    #[test]
    fn includes_for_monotonicity() {
        let mut small = table();
        small.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        let mut big = small.clone();
        big.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
    }

    #[test]
    fn to_relation_prefixes_columns() {
        let mut t = table();
        t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"]),
        );
        let rel = t.to_relation("MT").unwrap();
        assert!(rel.schema().has_attribute(&AttrName::new("r_name")));
        assert!(rel.schema().has_attribute(&AttrName::new("s_speciality")));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn key_sets() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert_eq!(t.r_keys().len(), 2);
        assert_eq!(t.s_keys().len(), 2);
    }
}
