//! Matching and negative matching tables (§3.2, §4.2).
//!
//! "Those pairs evaluating to *true* or *false* can be represented in
//! a matching table and a negative matching table, respectively.
//! Because each tuple has a unique identifier in its relation, a
//! matching (negative matching) table entry consists of the key
//! values of the pair of tuples." Entries must satisfy:
//!
//! * **Uniqueness constraint** — no tuple in either relation can be
//!   matched to more than one tuple in the other relation;
//! * **Consistency constraint** — no tuple pair can appear in both
//!   the matching and negative matching tables.

use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use eid_relational::{AttrName, FxHashSet, Relation, Schema, Tuple};

use crate::error::{CoreError, Result};

/// One entry: the key projections of a matched (or provably
/// unmatched) tuple pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairEntry {
    /// Primary-key value of the `R` tuple.
    pub r_key: Tuple,
    /// Primary-key value of the `S` tuple.
    pub s_key: Tuple,
}

/// A table of tuple pairs keyed by their relations' primary keys —
/// used for both `MT_RS` and `NMT_RS`.
///
/// The membership set backing [`PairTable::contains`] and the
/// per-[`PairTable::insert`] dedup is built lazily: bulk producers
/// (the blocked engine) append pre-deduplicated entries through
/// [`PairTable::extend_unique`] without ever paying for tuple
/// hashing, and the set materializes from `entries` on first use.
#[derive(Debug, Clone)]
pub struct PairTable {
    r_key_attrs: Vec<AttrName>,
    s_key_attrs: Vec<AttrName>,
    entries: Vec<PairEntry>,
    seen: OnceCell<FxHashSet<PairEntry>>,
}

impl PairTable {
    /// Creates an empty table over the given key attribute names.
    pub fn new(r_key_attrs: Vec<AttrName>, s_key_attrs: Vec<AttrName>) -> Self {
        PairTable {
            r_key_attrs,
            s_key_attrs,
            entries: Vec::new(),
            seen: OnceCell::new(),
        }
    }

    /// The membership set, materialized from `entries` on first use.
    fn seen(&self) -> &FxHashSet<PairEntry> {
        self.seen.get_or_init(|| {
            let mut set =
                FxHashSet::with_capacity_and_hasher(self.entries.len(), Default::default());
            set.extend(self.entries.iter().cloned());
            set
        })
    }

    /// `R`'s key attribute names.
    pub fn r_key_attrs(&self) -> &[AttrName] {
        &self.r_key_attrs
    }

    /// `S`'s key attribute names.
    pub fn s_key_attrs(&self) -> &[AttrName] {
        &self.s_key_attrs
    }

    /// Adds a pair (idempotent).
    pub fn insert(&mut self, r_key: Tuple, s_key: Tuple) -> bool {
        self.seen();
        let e = PairEntry { r_key, s_key };
        if self
            .seen
            .get_mut()
            .expect("just initialized")
            .insert(e.clone())
        {
            self.entries.push(e);
            true
        } else {
            false
        }
    }

    /// Appends entries the caller guarantees are pairwise distinct
    /// and absent from the table — the blocked engine's bulk path,
    /// which dedups on row-index pairs before key projection and so
    /// never needs per-entry tuple hashing here. If the membership
    /// set has already materialized it is kept in sync (and then
    /// still protects against duplicate inserts).
    pub fn extend_unique(&mut self, new: impl IntoIterator<Item = PairEntry>) {
        match self.seen.get_mut() {
            Some(seen) => {
                for e in new {
                    if seen.insert(e.clone()) {
                        self.entries.push(e);
                    }
                }
            }
            None => self.entries.extend(new),
        }
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[PairEntry] {
        &self.entries
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, r_key: &Tuple, s_key: &Tuple) -> bool {
        self.seen().contains(&PairEntry {
            r_key: r_key.clone(),
            s_key: s_key.clone(),
        })
    }

    /// Whether this table's pair set includes all of `other`'s —
    /// the monotonicity check's workhorse.
    pub fn includes(&self, other: &PairTable) -> bool {
        let seen = self.seen();
        other.entries.iter().all(|e| seen.contains(e))
    }

    /// Checks the **uniqueness constraint**: every `R` key maps to at
    /// most one `S` key and vice versa. The prototype performs this
    /// check after `setup_extkey` and prints "The extended key causes
    /// unsound matching result" on failure.
    pub fn verify_uniqueness(&self) -> Result<()> {
        let mut r_seen: HashMap<&Tuple, &Tuple> = HashMap::new();
        let mut s_seen: HashMap<&Tuple, &Tuple> = HashMap::new();
        for e in &self.entries {
            if let Some(prev) = r_seen.insert(&e.r_key, &e.s_key) {
                if prev != &e.s_key {
                    return Err(CoreError::UniquenessViolation {
                        side: "R",
                        key: e.r_key.to_string(),
                    });
                }
            }
            if let Some(prev) = s_seen.insert(&e.s_key, &e.r_key) {
                if prev != &e.r_key {
                    return Err(CoreError::UniquenessViolation {
                        side: "S",
                        key: e.s_key.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks the **consistency constraint** against a negative
    /// table: no pair may appear in both.
    pub fn verify_consistency(&self, negative: &PairTable) -> Result<()> {
        let negative_seen = negative.seen();
        for e in &self.entries {
            if negative_seen.contains(e) {
                return Err(CoreError::ConsistencyViolation {
                    pair: format!("({}, {})", e.r_key, e.s_key),
                });
            }
        }
        Ok(())
    }

    /// Renders the table as a relation whose attributes are the `R`
    /// key attributes (prefixed `r_`) followed by the `S` key
    /// attributes (prefixed `s_`), for printing in the prototype's
    /// format.
    pub fn to_relation(&self, name: &str) -> Result<Relation> {
        let mut names: Vec<String> = Vec::new();
        for a in &self.r_key_attrs {
            names.push(format!("r_{a}"));
        }
        for a in &self.s_key_attrs {
            names.push(format!("s_{a}"));
        }
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema: Arc<Schema> = Schema::of_strs(name, &name_refs, &name_refs)?;
        let mut rel = Relation::new_unchecked(schema);
        for e in &self.entries {
            rel.insert(e.r_key.concat(&e.s_key))?;
        }
        Ok(rel)
    }

    /// The set of `R` keys appearing in the table.
    pub fn r_keys(&self) -> HashSet<&Tuple> {
        self.entries.iter().map(|e| &e.r_key).collect()
    }

    /// The set of `S` keys appearing in the table.
    pub fn s_keys(&self) -> HashSet<&Tuple> {
        self.entries.iter().map(|e| &e.s_key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PairTable {
        PairTable::new(
            vec![AttrName::new("name"), AttrName::new("cuisine")],
            vec![AttrName::new("name"), AttrName::new("speciality")],
        )
    }

    #[test]
    fn insert_dedups() {
        let mut t = table();
        assert!(t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"])
        ));
        assert!(!t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"])
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extend_unique_bulk_path_agrees_with_insert() {
        let a = PairEntry {
            r_key: Tuple::of_strs(&["a", "x"]),
            s_key: Tuple::of_strs(&["a", "p"]),
        };
        let b = PairEntry {
            r_key: Tuple::of_strs(&["b", "y"]),
            s_key: Tuple::of_strs(&["b", "q"]),
        };
        // Bulk append before the membership set materializes…
        let mut t = table();
        t.extend_unique([a.clone(), b.clone()]);
        assert_eq!(t.len(), 2);
        // …then membership and per-insert dedup still work.
        assert!(t.contains(&a.r_key, &a.s_key));
        assert!(!t.insert(b.r_key.clone(), b.s_key.clone()));
        // Bulk append after materialization keeps the set in sync
        // (and dedups defensively).
        t.extend_unique([a.clone()]);
        assert_eq!(t.len(), 2);
        let c = PairEntry {
            r_key: Tuple::of_strs(&["c", "z"]),
            s_key: Tuple::of_strs(&["c", "r"]),
        };
        t.extend_unique([c.clone()]);
        assert!(t.contains(&c.r_key, &c.s_key));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn uniqueness_ok_for_one_to_one() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert!(t.verify_uniqueness().is_ok());
    }

    #[test]
    fn uniqueness_violation_on_r_side() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["b", "q"]));
        let err = t.verify_uniqueness().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UniquenessViolation { side: "R", .. }
        ));
    }

    #[test]
    fn uniqueness_violation_on_s_side() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["c", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["c", "p"]));
        let err = t.verify_uniqueness().unwrap_err();
        assert!(matches!(
            err,
            CoreError::UniquenessViolation { side: "S", .. }
        ));
    }

    #[test]
    fn consistency_detects_overlap() {
        let mut mt = table();
        mt.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        let mut nmt = table();
        nmt.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        assert!(mt.verify_consistency(&nmt).is_err());
        let empty = table();
        assert!(mt.verify_consistency(&empty).is_ok());
    }

    #[test]
    fn includes_for_monotonicity() {
        let mut small = table();
        small.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        let mut big = small.clone();
        big.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
    }

    #[test]
    fn to_relation_prefixes_columns() {
        let mut t = table();
        t.insert(
            Tuple::of_strs(&["tc", "chinese"]),
            Tuple::of_strs(&["tc", "hunan"]),
        );
        let rel = t.to_relation("MT").unwrap();
        assert!(rel.schema().has_attribute(&AttrName::new("r_name")));
        assert!(rel.schema().has_attribute(&AttrName::new("s_speciality")));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn key_sets() {
        let mut t = table();
        t.insert(Tuple::of_strs(&["a", "x"]), Tuple::of_strs(&["a", "p"]));
        t.insert(Tuple::of_strs(&["b", "y"]), Tuple::of_strs(&["b", "q"]));
        assert_eq!(t.r_keys().len(), 2);
        assert_eq!(t.s_keys().len(), 2);
    }
}
