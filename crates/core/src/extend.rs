//! Relation extension — step 1 and 2 of the §4.2 matching-table
//! construction.
//!
//! > Extend relation `R`, to `R′`, with attributes `K_Ext−R` and set
//! > the missing attribute values of each tuple to be NULL. …
//! > Apply the available ILFDs to derive the values for `K_Ext−R`
//! > … for each `R′` tuple.
//!
//! Derivation is delegated to [`eid_ilfd::derive`] with a selectable
//! [`Strategy`]; the ILFDs may also fill NULLs in pre-existing
//! attributes (the prototype derives `r_cty` for `R` even though
//! county is not part of `R`'s schema — here any attribute in the
//! extended schema is fair game, which is what the Prolog program's
//! dynamically asserted predicates achieve).

use eid_ilfd::derive::{derive_relation_with_stats, DeriveReport, DeriveStats};
use eid_ilfd::{IlfdSet, Strategy};
use eid_relational::{algebra, Attribute, Relation, Value, ValueType};
use eid_rules::ExtendedKey;

use crate::error::Result;

/// The result of extending a relation: the extended relation `R′`
/// plus the per-tuple derivation reports.
#[derive(Debug, Clone)]
pub struct Extended {
    /// The extended relation (schema = original ∪ missing `K_Ext` attrs).
    pub relation: Relation,
    /// One report per tuple, in relation order.
    pub reports: Vec<DeriveReport>,
    /// What the derivation pass cost (tuples, memo hits/misses,
    /// values assigned).
    pub stats: DeriveStats,
}

impl Extended {
    /// Whether every tuple derived cleanly (no conflicts or
    /// inconsistencies reported).
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(DeriveReport::is_clean)
    }
}

/// Extends `rel` with the extended-key attributes it is missing
/// (NULL-filled) and applies the ILFDs to derive their values.
///
/// New attributes are typed `Str` — the paper's workloads are
/// symbolic; a typed integration layer would carry domain metadata
/// here.
pub fn extend_relation(
    rel: &Relation,
    key: &ExtendedKey,
    ilfds: &IlfdSet,
    strategy: Strategy,
) -> Result<Extended> {
    let missing = key.missing_in(rel.schema());
    let extra: Vec<Attribute> = missing
        .iter()
        .map(|a| Attribute::new(a.clone(), ValueType::Str))
        .collect();
    let widened = if extra.is_empty() {
        rel.clone()
    } else {
        algebra::extend(rel, &extra, |_| vec![Value::Null; extra.len()])?
    };
    let (relation, reports, stats) = derive_relation_with_stats(&widened, ilfds, strategy);
    Ok(Extended {
        relation,
        reports,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::Ilfd;
    use eid_relational::{AttrName, Schema, Tuple};

    fn r() -> Relation {
        // Paper Table 5, relation R(name, cuisine, street).
        let schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();
        r.insert_strs(&["villagewok", "chinese", "wash_ave"])
            .unwrap();
        r
    }

    fn ilfds() -> IlfdSet {
        vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
            Ilfd::of_strs(
                &[("name", "twincities"), ("street", "co_b2")],
                &[("speciality", "hunan")],
            ),
            Ilfd::of_strs(
                &[("name", "anjuman"), ("street", "le_salle_ave")],
                &[("speciality", "mughalai")],
            ),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("speciality", "gyros")],
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn extend_r_reproduces_paper_table_6_left() {
        // Table 6: R′ has speciality derived for twincities/co_b2
        // (hunan), itsgreek (gyros via I7+I8), anjuman (mughalai);
        // NULL for twincities/co_b3 and villagewok.
        let key = ExtendedKey::of_strs(&["name", "cuisine", "speciality"]);
        let ext = extend_relation(&r(), &key, &ilfds(), Strategy::FirstMatch).unwrap();
        let rel = &ext.relation;
        assert!(rel.schema().has_attribute(&AttrName::new("speciality")));
        let spec = |i: usize| {
            rel.tuples()[i]
                .value_of(rel.schema(), &AttrName::new("speciality"))
                .unwrap()
                .clone()
        };
        assert_eq!(spec(0), Value::str("hunan"));
        assert!(spec(1).is_null());
        assert_eq!(spec(2), Value::str("gyros"));
        assert_eq!(spec(3), Value::str("mughalai"));
        assert!(spec(4).is_null());
        assert!(ext.is_clean());
    }

    #[test]
    fn already_covered_schema_is_untouched_structurally() {
        let key = ExtendedKey::of_strs(&["name", "cuisine"]);
        let ext = extend_relation(&r(), &key, &ilfds(), Strategy::FirstMatch).unwrap();
        assert_eq!(ext.relation.schema().arity(), 3);
        assert_eq!(ext.relation.len(), 5);
    }

    #[test]
    fn fixpoint_strategy_agrees_on_paper_workload() {
        let key = ExtendedKey::of_strs(&["name", "cuisine", "speciality"]);
        let a = extend_relation(&r(), &key, &ilfds(), Strategy::FirstMatch).unwrap();
        let b = extend_relation(&r(), &key, &ilfds(), Strategy::Fixpoint).unwrap();
        assert!(a.relation.same_tuples(&b.relation));
    }

    #[test]
    fn empty_ilfds_leave_nulls() {
        let key = ExtendedKey::of_strs(&["name", "cuisine", "speciality"]);
        let ext = extend_relation(&r(), &key, &IlfdSet::new(), Strategy::FirstMatch).unwrap();
        let pos = ext
            .relation
            .schema()
            .position(&AttrName::new("speciality"))
            .unwrap();
        assert!(ext.relation.iter().all(|t: &Tuple| t.get(pos).is_null()));
    }
}
