//! The cost-based match planner.
//!
//! [`Planner::plan`] turns the interned rule base plus cheap column
//! statistics ([`ColumnStat`]: distinct-symbol counts and null
//! fractions per attribute, read straight off the interned columns)
//! into a [`MatchPlan`]:
//!
//! * **Blocking key per identity rule** — any non-empty subset of a
//!   rule's probe positions (join ∪ `S`-literal columns) is sound,
//!   because every candidate is re-verified with the full rule; the
//!   planner drops columns with ≤ 1 distinct non-NULL symbol (they
//!   cannot narrow a bucket) and keeps the rest, most selective
//!   first in the explanation.
//! * **Serial vs. parallel** — below [`PARALLEL_MIN_PAIRS`] estimated
//!   candidate pairs the auto mode runs serially (thread spawn +
//!   merge overhead exceeds the work); explicit thread counts are
//!   honoured verbatim.
//! * **Probe vs. scan** — rules without an indexable shape fuse into
//!   one residual pairwise scan.
//!
//! [`JoinAlgorithm`](crate::JoinAlgorithm) survives only as the
//! [`ArmHint`] override: `Hash` forces the seed arm's shape (key-rule
//! probe + serial residual scan), `NestedLoop` forces everything to
//! scan — both still execute through the one
//! [`Executor`](crate::engine::Executor).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use eid_relational::ColumnStat;
use eid_rules::{InternedRuleBase, KernelShape, NeqSide};

use crate::kernels;
use crate::plan::{
    ArmHint, Emit, EmitHint, EmitMode, ExecMode, MatchPlan, PlanNode, PlanNodeKind, ProbeStrategy,
    RuleFamily, RuleRef, StatsSource,
};
use crate::sink::SinkGeometry;
use crate::stats::span;

/// Below this many estimated pairs (`|R′|·|S′|`) the auto mode runs
/// serially: thread spawn + merge overhead exceeds the work itself on
/// small inputs. Explicit thread counts are always honoured.
pub const PARALLEL_MIN_PAIRS: usize = 50_000;

/// Below this many estimated candidate pairs a kernel-shaped rule
/// stays on the scalar probe path: the vectorized scan's fixed costs
/// (driver-mask build, tile bookkeeping) only pay for themselves once
/// the candidate volume is substantial.
pub const VECTOR_MIN_PAIRS: usize = 32_768;

/// Below this many estimated raw negative pairs (summed over the
/// distinctness rules) the auto emit decision stays buffered: the
/// per-task `Vec`s fit cache and the streamed sink's shard setup +
/// post-scope merge would cost more than the dedup it saves. Above
/// it, buffering is the bottleneck — the raw list is re-read twice
/// (merge, dedup) — and emission streams into bitset shards instead.
pub const STREAM_MIN_PAIRS: u64 = 2_000_000;

/// The cost-based planner over one encoded relation pair. Borrows
/// the interned rule base and per-column statistics from the
/// [`Executor`](crate::engine::Executor) that will run the plan.
pub struct Planner<'e> {
    interned: &'e InternedRuleBase,
    stats_r: &'e [ColumnStat],
    stats_s: &'e [ColumnStat],
    attrs_r: &'e [String],
    attrs_s: &'e [String],
    rows_r: usize,
    rows_s: usize,
    threads: usize,
    kernels: bool,
    emit: EmitHint,
    budget_bytes: Option<u64>,
    spill: bool,
    spill_dir: Option<String>,
    stats_source: StatsSource,
}

/// One rule's planned enumeration: a classic probe strategy or a
/// vectorized kernel scan (which remembers the scalar twin's key).
enum Choice {
    Strategy(ProbeStrategy),
    Vector {
        shape: KernelShape,
        tile_rows: usize,
        key_positions: Vec<usize>,
    },
}

impl<'e> Planner<'e> {
    /// A planner reading the executor's interned rules and column
    /// statistics. `threads` carries the caller's thread request
    /// (`0` = auto); `use_kernels` gates [`PlanNodeKind::VectorScan`]
    /// dispatch (off ⇒ the scalar twin plan, byte-identical output);
    /// `emit` overrides the buffered-vs-streamed emission decision
    /// (`Auto` = the [`STREAM_MIN_PAIRS`] threshold decides).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        interned: &'e InternedRuleBase,
        stats_r: &'e [ColumnStat],
        stats_s: &'e [ColumnStat],
        attrs_r: &'e [String],
        attrs_s: &'e [String],
        rows_r: usize,
        rows_s: usize,
        threads: usize,
        use_kernels: bool,
        emit: EmitHint,
    ) -> Planner<'e> {
        Planner {
            interned,
            stats_r,
            stats_s,
            attrs_r,
            attrs_s,
            rows_r,
            rows_s,
            threads,
            kernels: use_kernels,
            emit,
            budget_bytes: None,
            spill: true,
            spill_dir: None,
            stats_source: StatsSource::Computed,
        }
    }

    /// Configures spill-aware emission: `budget_bytes` is the run's
    /// `max_pair_bytes` budget (None = unlimited), `spill = false`
    /// (`--no-spill`) keeps the pre-spill behaviour where a budget
    /// breach aborts, and `dir` overrides the spill parent directory
    /// (None = the platform temp dir).
    pub fn with_spill(
        mut self,
        budget_bytes: Option<u64>,
        spill: bool,
        dir: Option<String>,
    ) -> Planner<'e> {
        self.budget_bytes = budget_bytes;
        self.spill = spill;
        self.spill_dir = dir;
        self
    }

    /// Records where the column statistics came from — a persistent
    /// dataset's stats section vs. a fresh per-plan column scan. Pure
    /// provenance: the cost model reads the numbers either way.
    pub fn with_stats_source(mut self, source: StatsSource) -> Planner<'e> {
        self.stats_source = source;
        self
    }

    fn attr_s(&self, p: usize) -> String {
        self.attrs_s
            .get(p)
            .cloned()
            .unwrap_or_else(|| format!("col{p}"))
    }

    fn attr_r(&self, p: usize) -> String {
        self.attrs_r
            .get(p)
            .cloned()
            .unwrap_or_else(|| format!("col{p}"))
    }

    fn stat_s(&self, p: usize) -> ColumnStat {
        self.stats_s.get(p).copied().unwrap_or(ColumnStat {
            distinct: 0,
            nulls: 0,
            rows: self.rows_s,
        })
    }

    fn stat_r(&self, p: usize) -> ColumnStat {
        self.stats_r.get(p).copied().unwrap_or(ColumnStat {
            distinct: 0,
            nulls: 0,
            rows: self.rows_r,
        })
    }

    /// Chooses the blocking-key positions for one identity shape and
    /// explains the choice. Positions stay sorted ascending (the
    /// probe-key layout); the ranking only decides what to drop.
    fn choose_identity_key(
        &self,
        shape: &eid_rules::InternedIdentityShape,
    ) -> (Vec<usize>, String) {
        let candidates = shape.probe_positions();
        let mut kept: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&p| self.stat_s(p).distinct > 1)
            .collect();
        let mut dropped: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|p| !kept.contains(p))
            .collect();
        if kept.is_empty() {
            // Nothing selective: keep the single best column rather
            // than degenerating to a one-bucket index.
            if let Some(&best) = candidates
                .iter()
                .max_by_key(|&&p| (self.stat_s(p).distinct, usize::MAX - p))
            {
                kept.push(best);
                dropped.retain(|&p| p != best);
            }
        }
        let describe = |p: usize| {
            let st = self.stat_s(p);
            format!(
                "{} ({} distinct, {:.0}% null)",
                self.attr_s(p),
                st.distinct,
                st.null_fraction() * 100.0
            )
        };
        let mut ranked = kept.clone();
        ranked.sort_by_key(|&p| usize::MAX - self.stat_s(p).distinct);
        let mut why = format!(
            "blocking key ⟨{}⟩ — most selective first: {}",
            kept.iter()
                .map(|&p| self.attr_s(p))
                .collect::<Vec<_>>()
                .join(", "),
            ranked
                .iter()
                .map(|&p| describe(p))
                .collect::<Vec<_>>()
                .join(", "),
        );
        if !dropped.is_empty() {
            why.push_str(&format!(
                "; dropped non-selective: {}",
                dropped
                    .iter()
                    .map(|&p| describe(p))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        (kept, why)
    }

    /// The cross-product candidate volume — the scan/cross estimate
    /// and the parallelism driver.
    fn cross_est(&self) -> u64 {
        self.rows_r.saturating_mul(self.rows_s) as u64
    }

    /// Estimated candidates a probe on `key_positions` enumerates:
    /// the cross product scaled by the key's most selective column
    /// (equality on a column with `d` distinct symbols keeps ~1/d of
    /// the pair space).
    fn probe_est(&self, key_positions: &[usize]) -> u64 {
        let sel = key_positions
            .iter()
            .map(|&p| self.stat_s(p).distinct)
            .max()
            .unwrap_or(1)
            .max(1) as u64;
        self.cross_est() / sel
    }

    /// The auto mode decision, mirroring the engine's historical
    /// `resolve_threads`.
    fn choose_mode(&self, hint: ArmHint) -> (ExecMode, String) {
        if !matches!(hint, ArmHint::Auto) {
            return (
                ExecMode::Serial { auto_small: false },
                format!("{hint:?} hint: seed arm runs serially"),
            );
        }
        match self.threads {
            1 => (
                ExecMode::Serial { auto_small: false },
                "threads=1 requested".into(),
            ),
            0 => {
                let est = self.rows_r.saturating_mul(self.rows_s);
                if est < PARALLEL_MIN_PAIRS {
                    (
                        ExecMode::Serial { auto_small: true },
                        format!("auto: {est} estimated pairs < {PARALLEL_MIN_PAIRS} — serial"),
                    )
                } else {
                    // Floor at 2: on single-core hosts the scoped
                    // workers just timeslice (the chunked queue makes
                    // oversubscription harmless), and the parallel
                    // path — and its observability — actually runs.
                    let workers = std::thread::available_parallelism()
                        .map_or(2, |n| n.get())
                        .max(2);
                    (
                        ExecMode::Parallel { workers },
                        format!(
                            "auto: {est} estimated pairs ≥ {PARALLEL_MIN_PAIRS} — {workers} workers"
                        ),
                    )
                }
            }
            n => (
                ExecMode::Parallel { workers: n },
                format!("threads={n} requested"),
            ),
        }
    }

    /// The emission decision: spilled when the estimated pair bytes
    /// exceed the memory budget (and spilling is allowed), streamed
    /// when a refutation phase will emit enough raw pairs that
    /// buffering them is the bottleneck, buffered for the seed arms
    /// (their output bytes are frozen), when there is no refutation
    /// phase, or when the pair grid falls outside the dense-bitset
    /// range. The caller's [`EmitHint`] overrides the thresholds,
    /// never the structural gates — but a structurally-overridden
    /// explicit hint is called out in `emit_why` (and surfaced as the
    /// warn-once `plan/emit_hint_overridden` counter by the matcher).
    fn choose_emit(
        &self,
        hint: ArmHint,
        record_distinct: bool,
        est_raw_negative: u64,
        workers: usize,
    ) -> (Emit, String) {
        let hinted = !matches!(self.emit, EmitHint::Auto);
        let overridden = |why: String| {
            if hinted {
                format!(
                    "{why} (explicit emit={:?} hint overridden by a structural gate)",
                    self.emit
                )
            } else {
                why
            }
        };
        if !matches!(hint, ArmHint::Auto) {
            return (
                Emit::buffered(),
                overridden(format!(
                    "{hint:?} hint: seed arms convert through the buffered dedup"
                )),
            );
        }
        if !record_distinct {
            return (
                Emit::buffered(),
                overridden("no refutation phase: nothing worth streaming".into()),
            );
        }
        let Some(geom) = SinkGeometry::new(self.rows_r, self.rows_s) else {
            return (
                Emit::buffered(),
                overridden(format!(
                    "{}×{} pair grid outside the dense-bitset range",
                    self.rows_r, self.rows_s
                )),
            );
        };
        let streamed = Emit {
            mode: EmitMode::Streamed,
            shards: geom.shard_count,
            dir: String::new(),
            shard_bytes: 0,
        };
        // The per-worker resident cap for spilled emission: the
        // budget minus the merge grid, split across workers, floored
        // at one full shard so a worker can always hold the shard it
        // is writing.
        let grid = geom.grid_bytes();
        let shard_floor = (grid / geom.shard_count.max(1) as u64).max(4096);
        let cap_for =
            |budget: u64| (budget.saturating_sub(grid) / workers.max(1) as u64).max(shard_floor);
        let spill_emit = |shard_bytes: u64| Emit {
            mode: EmitMode::Spilled,
            shards: geom.shard_count,
            dir: self.spill_dir.clone().unwrap_or_default(),
            shard_bytes,
        };
        match self.emit {
            EmitHint::Buffered => (Emit::buffered(), "emit=buffered requested".into()),
            EmitHint::Streamed => (streamed, "emit=streamed requested".into()),
            EmitHint::Spilled => {
                let cap = self.budget_bytes.map_or(shard_floor, cap_for);
                (spill_emit(cap), "emit=spilled requested".into())
            }
            EmitHint::Auto => {
                let est_bytes = est_raw_negative.saturating_mul(8);
                if let Some(budget) = self.budget_bytes {
                    if self.spill && est_bytes > budget {
                        let cap = cap_for(budget);
                        return (
                            spill_emit(cap),
                            format!(
                                "est {est_bytes} pair bytes over the {budget}-byte budget: \
                                 shards spill past a {cap}-byte per-worker resident cap, \
                                 merged out-of-core in row-range order"
                            ),
                        );
                    }
                }
                if est_raw_negative >= STREAM_MIN_PAIRS {
                    (
                        streamed,
                        format!(
                            "est {est_raw_negative} raw negative pairs ≥ {STREAM_MIN_PAIRS}: \
                             workers emit into {} row-range bitset shards, dedup free at emission",
                            geom.shard_count
                        ),
                    )
                } else {
                    (
                        Emit::buffered(),
                        format!(
                            "est {est_raw_negative} raw negative pairs < {STREAM_MIN_PAIRS}: \
                             per-task buffers stay cache-resident"
                        ),
                    )
                }
            }
        }
    }

    /// Appends the shared vectorization rationale (shape, lane width,
    /// tile derivation) to a `why` string.
    fn vector_why(shape: KernelShape, est: usize, active_cols: usize, tile: usize) -> String {
        format!(
            "vector {} kernel ({}): est {est} candidate pairs ≥ {VECTOR_MIN_PAIRS}; \
             lanes={}, tile={tile} rows ({active_cols} active column(s) × 4 B ≤ {} KiB L2 budget)",
            shape.as_str(),
            kernels::simd_level(),
            kernels::LANES,
            kernels::L2_TILE_BYTES / 1024,
        )
    }

    /// The choice (explanation + candidate-pair estimate) for one
    /// identity rule under a hint. `force_probe` marks the `Hash`
    /// hint's key rule.
    fn identity_strategy(
        &self,
        rule: &eid_rules::InternedRule,
        hint: ArmHint,
        force_probe: bool,
    ) -> (Choice, String, u64) {
        let shape = rule.identity_shape();
        let (choice, why, est) = match hint {
            ArmHint::NestedLoop => (
                ProbeStrategy::Scan,
                "nested-loop hint: exhaustive pairwise scan".into(),
                self.cross_est(),
            ),
            ArmHint::Hash => {
                if force_probe {
                    if let Some(shape) = shape {
                        let positions = shape.probe_positions();
                        if !positions.is_empty() {
                            let names = positions
                                .iter()
                                .map(|&p| self.attr_s(p))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let est = self.probe_est(&positions);
                            return (
                                Choice::Strategy(ProbeStrategy::Probe {
                                    key_positions: positions,
                                }),
                                format!("hash hint: full extended-key join on ⟨{names}⟩"),
                                est,
                            );
                        }
                    }
                }
                (
                    ProbeStrategy::Scan,
                    "hash hint: extra rules run in the serial residual scan".into(),
                    self.cross_est(),
                )
            }
            ArmHint::Auto => match shape {
                Some(shape) if shape.join.is_empty() => (
                    ProbeStrategy::Cross,
                    "no join columns: literal-filtered cross product".into(),
                    self.cross_est(),
                ),
                Some(shape) => {
                    let (positions, why) = self.choose_identity_key(&shape);
                    if positions.is_empty() {
                        (
                            ProbeStrategy::Scan,
                            "empty blocking key".into(),
                            self.cross_est(),
                        )
                    } else {
                        // A key whose every column has ≤ 1 distinct
                        // symbol degenerates to one bucket — a full
                        // scan behind a hash lookup. When the volume
                        // is large enough, do the scan vectorized
                        // instead (the probe stays the byte-identical
                        // scalar twin).
                        let selective = positions.iter().any(|&p| self.stat_s(p).distinct > 1);
                        let est = self.rows_r.saturating_mul(self.rows_s);
                        if let (false, Some(kshape), true) = (
                            selective,
                            self.kernels.then(|| rule.kernel_shape()).flatten(),
                            est >= VECTOR_MIN_PAIRS,
                        ) {
                            let active = shape.join.len() + shape.s_lits.len();
                            let tile = kernels::tile_rows(active);
                            let vwhy = format!(
                                "non-selective blocking key; {}",
                                Self::vector_why(kshape, est, active, tile)
                            );
                            return (
                                Choice::Vector {
                                    shape: kshape,
                                    tile_rows: tile,
                                    key_positions: positions,
                                },
                                vwhy,
                                est as u64,
                            );
                        }
                        let est = self.probe_est(&positions);
                        (
                            ProbeStrategy::Probe {
                                key_positions: positions,
                            },
                            why,
                            est,
                        )
                    }
                }
                None => (
                    ProbeStrategy::Scan,
                    "no indexable equi-join shape: fused residual scan".into(),
                    self.cross_est(),
                ),
            },
        };
        (Choice::Strategy(choice), why, est)
    }

    /// The choice (explanation + candidate-pair estimate) for one
    /// distinctness rule.
    fn distinct_strategy(
        &self,
        rule: &eid_rules::InternedRule,
        hint: ArmHint,
    ) -> (Choice, String, u64) {
        if !matches!(hint, ArmHint::Auto) {
            return (
                Choice::Strategy(ProbeStrategy::Scan),
                format!("{hint:?} hint: refutation runs in the serial residual scan"),
                self.cross_est(),
            );
        }
        match rule.distinct_shape() {
            Some(shape) => {
                let (neq_side, neq_pos, _) = shape.neq;
                let (neq_name, lit_positions, neq_rows, lit_rows) = match neq_side {
                    NeqSide::R => (
                        format!("R.{}", self.attr_r(neq_pos)),
                        shape.s_lits.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
                        self.rows_r,
                        self.rows_s,
                    ),
                    NeqSide::S => (
                        format!("S.{}", self.attr_s(neq_pos)),
                        shape.r_lits.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
                        self.rows_s,
                        self.rows_r,
                    ),
                };
                let mut key_positions = lit_positions;
                key_positions.sort_unstable();
                key_positions.dedup();
                // Estimated emitted pairs: every ≠-side row (almost
                // all disagree with one constant) times the opposite
                // side's literal block, sized by its most selective
                // literal column.
                let lit_selectivity = key_positions
                    .iter()
                    .map(|&p| match neq_side {
                        NeqSide::R => self.stat_s(p).distinct,
                        NeqSide::S => self.stat_r(p).distinct,
                    })
                    .max()
                    .unwrap_or(1)
                    .max(1);
                let est = neq_rows.saturating_mul(lit_rows / lit_selectivity);
                if let (Some(kshape), true) = (
                    self.kernels.then(|| rule.kernel_shape()).flatten(),
                    est >= VECTOR_MIN_PAIRS,
                ) {
                    let tile = kernels::tile_rows(1);
                    let vwhy = format!(
                        "disagreement drivers masked a column chunk at a time, \
                         then bulk-paired with the literal block; {}",
                        Self::vector_why(kshape, est, 1, tile)
                    );
                    return (
                        Choice::Vector {
                            shape: kshape,
                            tile_rows: tile,
                            key_positions,
                        },
                        vwhy,
                        est as u64,
                    );
                }
                (
                    Choice::Strategy(ProbeStrategy::Probe { key_positions }),
                    format!(
                        "disagreement probe: drivers where {neq_name} ≠ const, \
                         paired with the opposite side's literal block — \
                         output-sensitive, not quadratic"
                    ),
                    est as u64,
                )
            }
            None => (
                Choice::Strategy(ProbeStrategy::Scan),
                "no single-≠ shape: fused residual scan".into(),
                self.cross_est(),
            ),
        }
    }

    /// Builds the full-pipeline plan for the selected rule families
    /// under `hint`.
    pub fn plan(&self, record_identity: bool, record_distinct: bool, hint: ArmHint) -> MatchPlan {
        let (mode, mode_why) = self.choose_mode(hint);
        let mut nodes: Vec<PlanNode> = Vec::new();
        let push = |nodes: &mut Vec<PlanNode>,
                    kind: PlanNodeKind,
                    label: String,
                    why: String,
                    span: &str,
                    inputs: Vec<usize>| {
            let id = nodes.len();
            nodes.push(PlanNode {
                id,
                kind,
                label,
                why,
                span: span.to_string(),
                inputs,
                est_pairs: None,
            });
            id
        };
        let d_r = push(
            &mut nodes,
            PlanNodeKind::Derive { side: "R" },
            "derive(R)".into(),
            "extend R with missing extended-key attributes; ILFDs fill values (§5)".into(),
            span::DERIVE_R,
            vec![],
        );
        let d_s = push(
            &mut nodes,
            PlanNodeKind::Derive { side: "S" },
            "derive(S)".into(),
            "extend S with missing extended-key attributes; ILFDs fill values (§5)".into(),
            span::DERIVE_S,
            vec![],
        );
        let encode = push(
            &mut nodes,
            PlanNodeKind::Encode,
            "encode".into(),
            format!(
                "intern {}+{} rows into columnar u32 symbols; hot predicates become integer compares",
                self.rows_r, self.rows_s
            ),
            span::ENGINE_ENCODE,
            vec![d_r, d_s],
        );

        // Probe/refute strategies, in the order the executor lowers
        // them (the Hash hint pulls the extended-key rule — the last
        // identity rule — to the front, matching the seed arm).
        let mut rule_plan: Vec<(RuleRef, Choice, String, u64)> = Vec::new();
        if record_identity {
            let n = self.interned.identity.len();
            let order: Vec<usize> = match hint {
                ArmHint::Hash if n > 0 => {
                    let mut order = vec![n - 1];
                    order.extend(0..n - 1);
                    order
                }
                _ => (0..n).collect(),
            };
            for idx in order {
                let rule = &self.interned.identity[idx];
                let force_probe = matches!(hint, ArmHint::Hash) && idx == n - 1;
                let (choice, why, est) = self.identity_strategy(rule, hint, force_probe);
                rule_plan.push((
                    RuleRef {
                        family: RuleFamily::Identity,
                        index: idx,
                        name: rule.name.clone(),
                    },
                    choice,
                    why,
                    est,
                ));
            }
        }
        if record_distinct {
            for (idx, rule) in self.interned.distinctness.iter().enumerate() {
                let (choice, why, est) = self.distinct_strategy(rule, hint);
                rule_plan.push((
                    RuleRef {
                        family: RuleFamily::Distinct,
                        index: idx,
                        name: rule.name.clone(),
                    },
                    choice,
                    why,
                    est,
                ));
            }
        }

        let est_raw_negative: u64 = rule_plan
            .iter()
            .filter(|(r, _, _, _)| matches!(r.family, RuleFamily::Distinct))
            .map(|(_, _, _, est)| *est)
            .sum();
        let (emit, emit_why) =
            self.choose_emit(hint, record_distinct, est_raw_negative, mode.workers());

        let indexed = rule_plan
            .iter()
            .filter(|(_, c, _, _)| !matches!(c, Choice::Strategy(ProbeStrategy::Scan)))
            .count();
        let block = push(
            &mut nodes,
            PlanNodeKind::Block,
            "block-index".into(),
            format!("build symbol-keyed inverted indexes for {indexed} probe plan(s)"),
            span::ENGINE_INDEX,
            vec![encode],
        );

        let mut probe_ids = Vec::with_capacity(rule_plan.len());
        for (rule, choice, why, est) in rule_plan {
            let input = if matches!(choice, Choice::Strategy(ProbeStrategy::Scan)) {
                encode
            } else {
                block
            };
            let span_path = match rule.family {
                RuleFamily::Identity => format!("{}/{}", span::ENGINE_IDENTITY, rule.name),
                RuleFamily::Distinct => format!("{}/{}", span::ENGINE_REFUTE, rule.name),
            };
            let (label, kind) = match choice {
                Choice::Strategy(strategy) => (
                    format!("{}({})", strategy.as_str(), rule.name),
                    match rule.family {
                        RuleFamily::Identity => PlanNodeKind::IdentityProbe { rule, strategy },
                        RuleFamily::Distinct => PlanNodeKind::Refute { rule, strategy },
                    },
                ),
                Choice::Vector {
                    shape,
                    tile_rows,
                    key_positions,
                } => (
                    format!("vector-scan({})", rule.name),
                    PlanNodeKind::VectorScan {
                        rule,
                        shape,
                        lanes: kernels::LANES,
                        tile_rows,
                        key_positions,
                    },
                ),
            };
            let id = nodes.len();
            nodes.push(PlanNode {
                id,
                kind,
                label,
                why,
                span: span_path,
                inputs: vec![input],
                est_pairs: Some(est),
            });
            probe_ids.push(id);
        }
        // Scan nodes fuse into one residual pass; report under the
        // residual span rather than a per-rule one.
        for node in &mut nodes {
            let is_scan = matches!(
                &node.kind,
                PlanNodeKind::IdentityProbe {
                    strategy: ProbeStrategy::Scan,
                    ..
                } | PlanNodeKind::Refute {
                    strategy: ProbeStrategy::Scan,
                    ..
                }
            );
            if is_scan {
                node.span = span::ENGINE_RESIDUAL.to_string();
            }
        }

        let dedup = match emit.mode {
            EmitMode::Streamed => push(
                &mut nodes,
                PlanNodeKind::Sink {
                    shards: emit.shards,
                },
                format!("sink({} shards)", emit.shards),
                format!("streamed emission — {emit_why}; shards merged by row range post-scope"),
                span::ENGINE_SINK_MERGE,
                probe_ids,
            ),
            EmitMode::Spilled => push(
                &mut nodes,
                PlanNodeKind::Sink {
                    shards: emit.shards,
                },
                format!("sink({} shards, spilled)", emit.shards),
                format!(
                    "spilled emission — {emit_why}; spilled segments streamed back \
                     in row-range order at merge"
                ),
                span::ENGINE_SINK_MERGE,
                probe_ids,
            ),
            EmitMode::Buffered => push(
                &mut nodes,
                PlanNodeKind::Dedup,
                "dedup".into(),
                "first-occurrence dedup of raw pair lists in id space; \
                 runs on two threads when the lists are large"
                    .into(),
                span::CONVERT,
                probe_ids,
            ),
        };
        push(
            &mut nodes,
            PlanNodeKind::Classify,
            "classify".into(),
            "Figure-3 partition: MT / NMT / undetermined accounting".into(),
            span::MATCH,
            vec![dedup],
        );

        MatchPlan {
            nodes,
            mode,
            mode_why,
            arm: hint,
            index_free: false,
            record_identity,
            record_distinct,
            emit,
            emit_why,
            stats_source: self.stats_source,
        }
    }
}
