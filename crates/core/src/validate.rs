//! Pre-match validation of DBA-supplied knowledge (§3.2).
//!
//! "In general, it is necessary though not sufficient to enforce the
//! identity/distinctness rules in the integrated world as constraints
//! in the relations to be matched. For example, for the identity rule
//! r1 to hold, we have to ensure that there is at most one Chinese
//! restaurant in every relation … Similarly, for the distinctness
//! rule r3 to hold, we have to ensure that for each relation … no
//! non-Indian restaurant tuple can have specialty in Mughalai food."
//!
//! [`validate_knowledge`] runs those necessary checks *before*
//! matching:
//!
//! 1. **ILFD consistency** — every tuple of each relation must be
//!    consistent with every ILFD (using lenient semantics: NULLs are
//!    unknowns, only witnessed contradictions count), since "all
//!    tuples modeling the real world are consistent with the ILFDs";
//! 2. **intra-relation key uniqueness** — after extension/derivation,
//!    no two tuples of the *same* relation may share a complete
//!    extended-key value ("the uniqueness of tuple in a relation
//!    satisfying the identity rule conditions must be observed");
//! 3. **identity-rule uniqueness** — same check for every extra
//!    identity rule: no two tuples of one relation may both satisfy
//!    an identity rule against the same counterpart.
//!
//! Failures here mean the knowledge cannot possibly yield a sound
//! matching; they are reported with the offending tuples so the DBA
//! can fix either the data or the rules.

use eid_ilfd::satisfaction::tuple_satisfies_lenient;
use eid_relational::{Relation, Tuple};

use crate::error::Result;
use crate::extend::extend_relation;
use crate::matcher::MatchConfig;

/// One tuple contradicting one ILFD.
#[derive(Debug, Clone)]
pub struct IlfdViolation {
    /// `"R"` or `"S"`.
    pub side: &'static str,
    /// The violating tuple's primary key.
    pub key: Tuple,
    /// A rendering of the violated ILFD.
    pub ilfd: String,
}

/// Two tuples of one relation sharing a complete extended-key value.
#[derive(Debug, Clone)]
pub struct IntraKeyDuplicate {
    /// `"R"` or `"S"`.
    pub side: &'static str,
    /// Primary keys of the colliding tuples.
    pub keys: (Tuple, Tuple),
    /// The shared extended-key projection.
    pub shared: Tuple,
}

/// The validation report. Empty vectors = the necessary conditions
/// hold (which, per the paper, is still "not sufficient" — only the
/// post-match [`crate::matcher::MatchOutcome::verify`] is decisive).
#[derive(Debug, Clone, Default)]
pub struct KnowledgeReport {
    /// Tuples contradicting ILFDs.
    pub ilfd_violations: Vec<IlfdViolation>,
    /// Intra-relation extended-key duplicates.
    pub key_duplicates: Vec<IntraKeyDuplicate>,
}

impl KnowledgeReport {
    /// Whether every necessary condition held.
    pub fn is_clean(&self) -> bool {
        self.ilfd_violations.is_empty() && self.key_duplicates.is_empty()
    }
}

/// Runs the §3.2 necessary checks for `config` over `r` and `s`.
pub fn validate_knowledge(
    r: &Relation,
    s: &Relation,
    config: &MatchConfig,
) -> Result<KnowledgeReport> {
    let mut report = KnowledgeReport::default();

    for (side, rel) in [("R", r), ("S", s)] {
        // 1. ILFD consistency on the raw relation.
        for ilfd in config.ilfds.iter() {
            for t in rel.iter() {
                if !tuple_satisfies_lenient(rel.schema(), t, ilfd) {
                    report.ilfd_violations.push(IlfdViolation {
                        side,
                        key: rel.primary_key_of(t),
                        ilfd: ilfd.to_string(),
                    });
                }
            }
        }

        // 2. Extended-key uniqueness inside the relation, after
        //    derivation (two same-relation tuples with identical
        //    complete extended keys would both match any counterpart
        //    — the uniqueness constraint could then never hold).
        let extended = extend_relation(rel, &config.extended_key, &config.ilfds, config.strategy)?;
        let positions = extended
            .relation
            .positions_of(config.extended_key.attrs())?;
        let mut seen: std::collections::HashMap<Tuple, usize> = std::collections::HashMap::new();
        for (i, t) in extended.relation.iter().enumerate() {
            if !t.non_null_at(&positions) {
                continue;
            }
            let proj = t.project(&positions);
            if let Some(&j) = seen.get(&proj) {
                report.key_duplicates.push(IntraKeyDuplicate {
                    side,
                    keys: (
                        rel.primary_key_of(&rel.tuples()[j]),
                        rel.primary_key_of(&rel.tuples()[i]),
                    ),
                    shared: proj,
                });
            } else {
                seen.insert(proj, i);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::{Ilfd, IlfdSet};
    use eid_relational::Schema;
    use eid_rules::ExtendedKey;

    fn config(ilfds: IlfdSet) -> MatchConfig {
        MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds)
    }

    fn relations() -> (Relation, Relation) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "street"]).unwrap();
        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "cuisine"],
            &["name", "speciality"],
        )
        .unwrap();
        (Relation::new(r_schema), Relation::new(s_schema))
    }

    #[test]
    fn clean_knowledge_passes() {
        let (mut r, mut s) = relations();
        r.insert_strs(&["tc", "chinese", "a"]).unwrap();
        s.insert_strs(&["tc", "hunan", "chinese"]).unwrap();
        let f: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        let report = validate_knowledge(&r, &s, &config(f)).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn detects_ilfd_violation() {
        let (r, mut s) = relations();
        // S tuple contradicts the ILFD: hunan but greek.
        s.insert_strs(&["x", "hunan", "greek"]).unwrap();
        let f: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "hunan")],
            &[("cuisine", "chinese")],
        )]
        .into_iter()
        .collect();
        let report = validate_knowledge(&r, &s, &config(f)).unwrap();
        assert_eq!(report.ilfd_violations.len(), 1);
        assert_eq!(report.ilfd_violations[0].side, "S");
        assert!(!report.is_clean());
    }

    #[test]
    fn null_consequents_are_not_violations() {
        // A tuple that merely lacks the consequent value is fine.
        let (mut r, s) = relations();
        r.insert(Tuple::new(vec![
            eid_relational::Value::str("x"),
            eid_relational::Value::Null,
            eid_relational::Value::str("st"),
        ]))
        .unwrap();
        let f: IlfdSet = vec![Ilfd::of_strs(&[("name", "x")], &[("cuisine", "chinese")])]
            .into_iter()
            .collect();
        let report = validate_knowledge(&r, &s, &config(f)).unwrap();
        assert!(report.ilfd_violations.is_empty());
    }

    #[test]
    fn detects_intra_relation_key_duplicates() {
        // Two R tuples with the same (name, cuisine): legal for R's
        // own key (name, street) but fatal for the extended key.
        let (mut r, s) = relations();
        r.insert_strs(&["tc", "chinese", "a"]).unwrap();
        r.insert_strs(&["tc", "chinese", "b"]).unwrap();
        let report = validate_knowledge(&r, &s, &config(IlfdSet::new())).unwrap();
        assert_eq!(report.key_duplicates.len(), 1);
        assert_eq!(report.key_duplicates[0].side, "R");
        assert_eq!(
            report.key_duplicates[0].shared,
            Tuple::of_strs(&["tc", "chinese"])
        );
    }

    #[test]
    fn duplicates_created_by_derivation_are_caught() {
        // Two S tuples whose derived cuisines collide on (name, cuisine).
        let (r, _) = relations();
        let s_schema =
            Schema::of_strs("S", &["name", "speciality"], &["name", "speciality"]).unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["tc", "hunan"]).unwrap();
        s.insert_strs(&["tc", "sichuan"]).unwrap();
        let f: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
        ]
        .into_iter()
        .collect();
        let report = validate_knowledge(&r, &s, &config(f)).unwrap();
        assert_eq!(report.key_duplicates.len(), 1);
        assert_eq!(report.key_duplicates[0].side, "S");
    }

    #[test]
    fn incomplete_keys_do_not_collide() {
        let (mut r, s) = relations();
        // NULL cuisine → incomplete extended key → not a duplicate.
        r.insert(Tuple::new(vec![
            eid_relational::Value::str("tc"),
            eid_relational::Value::Null,
            eid_relational::Value::str("a"),
        ]))
        .unwrap();
        r.insert(Tuple::new(vec![
            eid_relational::Value::str("tc"),
            eid_relational::Value::Null,
            eid_relational::Value::str("b"),
        ]))
        .unwrap();
        let report = validate_knowledge(&r, &s, &config(IlfdSet::new())).unwrap();
        assert!(report.key_duplicates.is_empty());
    }
}
