//! Error types for the entity-identification engine.

use std::fmt;

use eid_relational::RelationalError;
use eid_rules::{IdentityRuleError, InconsistentRules};

use crate::runtime::{AbortReason, PartialStats};

/// Any error raised by the entity-identification engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying relational operation failed.
    Relational(RelationalError),
    /// An identity rule failed its well-formedness check.
    IdentityRule(IdentityRuleError),
    /// An identity and a distinctness rule fired on the same pair.
    InconsistentRules(InconsistentRules),
    /// The matching table violates the §3.2 uniqueness constraint:
    /// a tuple matched more than one tuple of the other relation —
    /// the prototype's "extended key causes unsound matching result".
    UniquenessViolation {
        /// `"R"` or `"S"` — the side whose tuple matched twice.
        side: &'static str,
        /// Rendered key value of the offending tuple.
        key: String,
    },
    /// The §3.2 consistency constraint is violated: a pair appears in
    /// both the matching and the negative matching table.
    ConsistencyViolation {
        /// Rendered `(r_key, s_key)` of the offending pair.
        pair: String,
    },
    /// The extended key is empty — it can never establish identity.
    EmptyExtendedKey,
    /// A [`MatchPlan`](crate::plan::MatchPlan) handed to the executor
    /// references rules or blocking keys the compiled rule base
    /// cannot satisfy.
    InvalidPlan {
        /// What the executor rejected.
        detail: String,
    },
    /// The run tripped its [`RunGuard`](crate::RunGuard): cancelled,
    /// past its deadline, or over a resource budget. No tables are
    /// published (§3.3 forbids partial decisions); `partial` reports
    /// how far the run got.
    Aborted {
        /// Why the guard tripped.
        reason: AbortReason,
        /// Progress snapshot at the trip.
        partial: PartialStats,
    },
    /// A worker thread panicked and the degradation ladder was
    /// exhausted (or the panic struck outside a recoverable stage).
    WorkerPanic {
        /// The stage that poisoned, e.g. `"engine/worker"`.
        site: String,
    },
    /// A persistent dataset store could not be written, opened, or
    /// validated: truncation, checksum/version mismatch, impossible
    /// lengths, I/O failure. Corrupt stores *always* land here —
    /// never a panic, never silently-wrong tables.
    Store {
        /// The offending file or dataset directory.
        path: String,
        /// What failed.
        reason: String,
    },
}

impl CoreError {
    /// Builds an [`CoreError::Aborted`] from a guard's reason and
    /// partial-progress snapshot.
    pub fn aborted(reason: AbortReason, partial: PartialStats) -> CoreError {
        CoreError::Aborted { reason, partial }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relational(e) => write!(f, "{e}"),
            CoreError::IdentityRule(e) => write!(f, "{e}"),
            CoreError::InconsistentRules(e) => write!(f, "{e}"),
            CoreError::UniquenessViolation { side, key } => write!(
                f,
                "unsound matching: tuple {key} of {side} matched more than one tuple"
            ),
            CoreError::ConsistencyViolation { pair } => write!(
                f,
                "pair {pair} appears in both the matching and negative matching tables"
            ),
            CoreError::EmptyExtendedKey => write!(f, "extended key has no attributes"),
            CoreError::InvalidPlan { detail } => {
                write!(f, "invalid match plan: {detail}")
            }
            CoreError::Aborted { reason, partial } => {
                write!(f, "run aborted: {reason} ({partial})")
            }
            CoreError::WorkerPanic { site } => {
                write!(f, "worker panicked at {site}; degraded reruns exhausted")
            }
            CoreError::Store { path, reason } => {
                write!(f, "dataset store {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relational(e) => Some(e),
            CoreError::IdentityRule(e) => Some(e),
            CoreError::InconsistentRules(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for CoreError {
    fn from(e: RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<IdentityRuleError> for CoreError {
    fn from(e: IdentityRuleError) -> Self {
        CoreError::IdentityRule(e)
    }
}

impl From<InconsistentRules> for CoreError {
    fn from(e: InconsistentRules) -> Self {
        CoreError::InconsistentRules(e)
    }
}

impl From<eid_relational::store::StoreError> for CoreError {
    fn from(e: eid_relational::store::StoreError) -> Self {
        CoreError::Store {
            path: e.path,
            reason: e.reason,
        }
    }
}

/// Convenient result alias for the core engine.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = RelationalError::EmptySchema {
            relation: "R".into(),
        }
        .into();
        assert!(e.to_string().contains('R'));

        let u = CoreError::UniquenessViolation {
            side: "S",
            key: "(villagewok)".into(),
        };
        assert!(u.to_string().contains("villagewok"));
        assert!(u.to_string().contains("unsound"));

        let c = CoreError::ConsistencyViolation {
            pair: "((a), (b))".into(),
        };
        assert!(c.to_string().contains("both"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: CoreError = RelationalError::EmptySchema {
            relation: "R".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(CoreError::EmptyExtendedKey.source().is_none());
    }
}
