//! The typed match-plan IR — §4.2's pipeline as an explicit,
//! inspectable object.
//!
//! A [`MatchPlan`] is a small DAG of [`PlanNode`]s covering the whole
//! run: `Derive` (ILFD extension, §5), `Encode` (interning), `Block`
//! (index construction), one `IdentityProbe` per identity rule (§4),
//! one `Refute` per distinctness rule (§3), `Dedup` (pair-list
//! conversion), and `Classify` (the Figure-3 partition). The
//! cost-based [`Planner`](crate::planner::Planner) builds plans from
//! cheap column statistics; the [`Executor`](crate::engine::Executor)
//! is the only place that runs them.
//!
//! Plans are pure data: they can be serialized to JSON (`eid plan
//! --explain`), rendered as a text tree
//! ([`crate::explain::render_plan`]), cached across runs, and —
//! centrally — **rewritten**. The PR 4 degradation ladder is now two
//! rewrite rules instead of hand-rolled control flow:
//!
//! * [`MatchPlan::rewrite_serial`] — swap a parallel plan for its
//!   serial twin (same nodes, same output bytes);
//! * [`MatchPlan::rewrite_index_free`] — demote every probe strategy
//!   to `Scan` (the index-free nested-loop arm; same output *set*).
//!
//! Emission has its own ladder, lowered one rung at a time:
//! [`MatchPlan::rewrite_streamed`] (spilled→streamed, shards stay
//! resident) and [`MatchPlan::rewrite_buffered`] (streamed→buffered,
//! the historical `Vec` path). Both are idempotent and compose:
//! `rewrite_streamed().rewrite_buffered() == rewrite_buffered()`.
//!
//! Every node carries an `eid-obs` span path and a stable id, so the
//! run report's per-node breakdown can be joined back to the plan.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::stats::span;
use eid_obs::json;
use eid_rules::KernelShape;

/// Which rule family a plan node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFamily {
    /// An identity rule (populates `MT_RS`).
    Identity,
    /// A distinctness rule (populates `NMT_RS`).
    Distinct,
}

impl RuleFamily {
    /// The family's report name (`"identity"` / `"distinct"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleFamily::Identity => "identity",
            RuleFamily::Distinct => "distinct",
        }
    }
}

/// A stable reference to one interned rule: family plus index into
/// the interned rule base's family list (interned order equals
/// compiled order, so the reference survives re-encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    /// The rule's family.
    pub family: RuleFamily,
    /// Index into the family's rule list.
    pub index: usize,
    /// The rule's source name (for display; resolution is by index).
    pub name: String,
}

/// How a probe node enumerates candidate pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Probe a symbol-keyed inverted index on the chosen `S`-side
    /// key positions (the blocked hash join). Any non-empty subset
    /// of the rule's probe positions is sound — candidates are
    /// re-verified with the full rule — so the planner picks the
    /// most selective subset.
    Probe {
        /// `S`-side column positions forming the blocking key.
        key_positions: Vec<usize>,
    },
    /// Literal-filtered cross product (constant-only rules with no
    /// join columns).
    Cross,
    /// Index-free pairwise scan (non-indexable shape, or the
    /// nested-loop rewrite). All `Scan` nodes fuse into one residual
    /// pass over the pair space.
    Scan,
}

impl ProbeStrategy {
    /// The strategy's report name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProbeStrategy::Probe { .. } => "probe",
            ProbeStrategy::Cross => "cross",
            ProbeStrategy::Scan => "scan",
        }
    }
}

/// The node vocabulary of the match-plan IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNodeKind {
    /// ILFD extension + derivation of one side (`"R"` or `"S"`).
    Derive {
        /// Which relation (`"R"` / `"S"`).
        side: &'static str,
    },
    /// Value interning + columnar encoding of both relations.
    Encode,
    /// Eager inverted-index construction for every probe node.
    Block,
    /// Candidate generation + verification for one identity rule.
    IdentityProbe {
        /// The rule this node runs.
        rule: RuleRef,
        /// How candidates are enumerated.
        strategy: ProbeStrategy,
    },
    /// Candidate generation + verification for one distinctness rule.
    Refute {
        /// The rule this node runs.
        rule: RuleRef,
        /// How candidates are enumerated.
        strategy: ProbeStrategy,
    },
    /// Vectorized evaluation of one kernel-shaped rule: batch kernels
    /// compare `lanes` rows per step over cache-sized column tiles.
    /// Emitted by the planner only when the rule's interned shape
    /// matches a kernel and the estimated candidate volume clears
    /// [`crate::planner::VECTOR_MIN_PAIRS`]. Output is byte-identical
    /// to the scalar twin [`MatchPlan::rewrite_scalar`] produces.
    VectorScan {
        /// The rule this node runs.
        rule: RuleRef,
        /// Which specialized kernel evaluates the rule.
        shape: KernelShape,
        /// Rows compared per kernel step ([`crate::kernels::LANES`]).
        lanes: usize,
        /// Rows per cache tile of the scanned side's active columns.
        tile_rows: usize,
        /// The blocking-key positions the scalar twin probes on —
        /// kept so degradation rewrites need no re-planning.
        key_positions: Vec<usize>,
    },
    /// First-occurrence dedup of the raw pair lists (id space).
    Dedup,
    /// Post-scope merge of the streamed per-worker bitset shards
    /// into one deduped [`PairSet`](crate::sink::PairSet). Replaces
    /// `Dedup` when [`MatchPlan::emit`] is streamed: dedup already
    /// happened at emission time, so the convert stage collapses
    /// onto the merged shards.
    Sink {
        /// Row-range shard count of the sink geometry.
        shards: usize,
    },
    /// The Figure-3 partition: MT / NMT / undetermined accounting.
    Classify,
}

impl PlanNodeKind {
    /// The kind's report name.
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanNodeKind::Derive { .. } => "derive",
            PlanNodeKind::Encode => "encode",
            PlanNodeKind::Block => "block",
            PlanNodeKind::IdentityProbe { .. } => "identity-probe",
            PlanNodeKind::Refute { .. } => "refute",
            PlanNodeKind::VectorScan { .. } => "vector-scan",
            PlanNodeKind::Dedup => "dedup",
            PlanNodeKind::Sink { .. } => "sink",
            PlanNodeKind::Classify => "classify",
        }
    }
}

/// One stage node of a [`MatchPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Stable node id (== index in [`MatchPlan::nodes`]).
    pub id: usize,
    /// What the node does.
    pub kind: PlanNodeKind,
    /// Short display label, e.g. `identity-probe(key-eq)`.
    pub label: String,
    /// The cost model's explanation of why this node looks the way
    /// it does (chosen blocking key, selectivities, fallback reason).
    pub why: String,
    /// The `eid-obs` span path this node reports under.
    pub span: String,
    /// Ids of the nodes whose outputs this node consumes.
    pub inputs: Vec<usize>,
    /// The cost model's candidate-pair estimate for this node, when
    /// it made one (probe/refute/vector-scan nodes). EXPLAIN ANALYZE
    /// joins this against the executed `plan/node/<id>/*` counters to
    /// show estimated vs. actual.
    pub est_pairs: Option<u64>,
}

/// Serial vs. parallel execution of the probe/refute task queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One worker. `auto_small` marks the planner's own small-input
    /// fallback (reported as `engine/serial_fallback`), as opposed to
    /// an explicit `threads = 1` or a degradation rewrite.
    Serial {
        /// Whether the planner chose serial for a small input.
        auto_small: bool,
    },
    /// A scoped worker pool of `workers` threads (clamped to the
    /// task count at execution time).
    Parallel {
        /// Requested worker count.
        workers: usize,
    },
}

impl ExecMode {
    /// The worker count this mode requests.
    pub fn workers(&self) -> usize {
        match self {
            ExecMode::Serial { .. } => 1,
            ExecMode::Parallel { workers } => (*workers).max(1),
        }
    }
}

/// The surviving role of [`JoinAlgorithm`](crate::JoinAlgorithm): a
/// planner hint. `Auto` lets the cost model choose per rule; `Hash`
/// and `NestedLoop` force the seed arms' shapes (and their report
/// labels) for oracles and A/B runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmHint {
    /// Cost-based: probe where a shape exists, scan the rest.
    Auto,
    /// The seed hash arm: key-rule probe plus a serial scan.
    Hash,
    /// The exhaustive oracle: everything scans, serially.
    NestedLoop,
}

impl ArmHint {
    /// The report's `engine` label for this hint under `index_free`
    /// and the actual worker count.
    pub fn arm_label(&self, index_free: bool, workers: usize) -> &'static str {
        match self {
            ArmHint::Auto => {
                if index_free {
                    "nested_loop"
                } else if workers > 1 {
                    "blocked_parallel"
                } else {
                    "blocked"
                }
            }
            ArmHint::Hash => "hash",
            ArmHint::NestedLoop => "nested_loop",
        }
    }
}

/// How the engine publishes the negative (refuted) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// Per-task `Vec`s merged in task order, deduped by the convert
    /// stage — the historical path, byte-identical across releases.
    Buffered,
    /// Workers emit straight into row-range bitset shards; dedup is
    /// free at emission and the shards merge post-scope. The raw
    /// pair list never exists.
    Streamed,
    /// Streamed emission whose shards spill to temp files when the
    /// per-worker resident cap is breached; the merge streams spilled
    /// segments back in row-range order under bounded memory. The
    /// out-of-core rung: `--max-mem-mb` degrades here before it
    /// aborts.
    Spilled,
}

/// The planner's emission decision for a plan, carried on
/// [`MatchPlan::emit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emit {
    /// Buffered vs. streamed vs. spilled emission.
    pub mode: EmitMode,
    /// Row-range shard count when streamed/spilled (0 when buffered).
    pub shards: usize,
    /// Parent directory for spill files when spilled (empty = the
    /// platform temp dir). The executor creates a uniquely-named run
    /// directory underneath and removes it on drop.
    pub dir: String,
    /// Per-worker resident-shard byte cap when spilled (0 when not
    /// spilled): shards flush to disk once resident bytes exceed it.
    pub shard_bytes: u64,
}

impl Emit {
    /// The buffered decision (the default and every rewrite target).
    pub fn buffered() -> Emit {
        Emit {
            mode: EmitMode::Buffered,
            shards: 0,
            dir: String::new(),
            shard_bytes: 0,
        }
    }

    /// Short display string (`"buffered"` / `"streamed(11)"` /
    /// `"spilled(11)"`).
    pub fn display(&self) -> String {
        match self.mode {
            EmitMode::Buffered => "buffered".to_string(),
            EmitMode::Streamed => format!("streamed({})", self.shards),
            EmitMode::Spilled => format!("spilled({})", self.shards),
        }
    }
}

/// Caller-side override of the emission decision (`--emit` on the
/// CLI and bench). `Auto` lets the pair-volume threshold decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitHint {
    /// Cost-based: streamed above the pair-volume threshold, spilled
    /// when the memory budget says the pairs won't fit.
    #[default]
    Auto,
    /// Force buffered emission.
    Buffered,
    /// Force streamed emission (where structurally possible — the
    /// grid must fit the dense-bitset ceiling and a refutation phase
    /// must exist).
    Streamed,
    /// Force spilled emission (same structural limits as streamed).
    Spilled,
}

/// Where the column statistics that costed a plan came from — shown
/// by `eid plan --explain` so planner decisions on a persistent
/// dataset stay auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsSource {
    /// Recomputed from the in-memory symbol columns (the CSV path).
    #[default]
    Computed,
    /// Read back from a dataset store's stats section — no per-plan
    /// column scan happened.
    Persisted,
}

impl StatsSource {
    /// Display string (`"computed"` / `"persisted"`).
    pub fn as_str(self) -> &'static str {
        match self {
            StatsSource::Computed => "computed",
            StatsSource::Persisted => "persisted",
        }
    }
}

/// A complete, executable match plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchPlan {
    /// The stage DAG, in execution order (probe nodes execute in
    /// node order; `Scan` strategies fuse into one final residual
    /// pass).
    pub nodes: Vec<PlanNode>,
    /// Serial vs. parallel task execution.
    pub mode: ExecMode,
    /// The cost model's explanation of the mode choice.
    pub mode_why: String,
    /// The planner hint the plan was built under (names the report's
    /// `engine` arm label).
    pub arm: ArmHint,
    /// Whether every probe strategy has been demoted to `Scan` (the
    /// nested-loop rewrite / memory-budget degradation).
    pub index_free: bool,
    /// Whether identity rules execute (populate `MT`).
    pub record_identity: bool,
    /// Whether distinctness rules execute (populate `NMT`).
    pub record_distinct: bool,
    /// How negative pairs are emitted (buffered vs. streamed sink).
    pub emit: Emit,
    /// The cost model's explanation of the emit choice.
    pub emit_why: String,
    /// Whether the column statistics behind the cost model were
    /// recomputed or read from a persistent store.
    pub stats_source: StatsSource,
}

impl MatchPlan {
    /// The serial twin of this plan: same nodes, one worker. Output
    /// is byte-identical — the task list never depends on the worker
    /// count. This is rung 2 of the degradation ladder. Emission is
    /// lowered to buffered first, so degradation twins always run
    /// the historical `Vec` path.
    pub fn rewrite_serial(&self) -> MatchPlan {
        let mut plan = self.rewrite_buffered();
        plan.mode = ExecMode::Serial { auto_small: false };
        plan
    }

    /// The buffered-emission twin: a streamed or spilled plan's
    /// [`Sink`] node becomes the `Dedup` node the planner would have
    /// emitted for a buffered plan, and [`MatchPlan::emit`] drops to
    /// buffered. Same output *set* (the buffered path preserves
    /// first-occurrence order, the sink paths decode ascending). A
    /// buffered plan is returned unchanged. Used by the serial and
    /// index-free rewrites and by the incremental matcher, whose
    /// staged-commit rollback needs the raw pair lists.
    ///
    /// [`Sink`]: PlanNodeKind::Sink
    pub fn rewrite_buffered(&self) -> MatchPlan {
        let mut plan = self.clone();
        if plan.emit.mode == EmitMode::Buffered {
            return plan;
        }
        plan.emit = Emit::buffered();
        plan.emit_why = format!("buffered rewrite; was: {}", plan.emit_why);
        for node in &mut plan.nodes {
            if matches!(node.kind, PlanNodeKind::Sink { .. }) {
                node.kind = PlanNodeKind::Dedup;
                node.label = "dedup".into();
                node.span = span::CONVERT.into();
                node.why = format!("buffered rewrite; was: {}", node.why);
            }
        }
        plan
    }

    /// The streamed-emission twin of a spilled plan: same [`Sink`]
    /// node and shard geometry, but shards stay resident and nothing
    /// touches disk. One rung up the emission ladder —
    /// spilled→streamed→buffered, each step idempotent, so
    /// `p.rewrite_streamed().rewrite_buffered() == p.rewrite_buffered()`.
    /// Streamed and buffered plans are returned unchanged. Used when
    /// spill I/O fails terminally (retries exhausted) and the run
    /// falls back to in-memory shards.
    ///
    /// [`Sink`]: PlanNodeKind::Sink
    pub fn rewrite_streamed(&self) -> MatchPlan {
        let mut plan = self.clone();
        if plan.emit.mode != EmitMode::Spilled {
            return plan;
        }
        plan.emit = Emit {
            mode: EmitMode::Streamed,
            shards: plan.emit.shards,
            dir: String::new(),
            shard_bytes: 0,
        };
        plan.emit_why = format!("streamed rewrite; was: {}", plan.emit_why);
        for node in &mut plan.nodes {
            if matches!(node.kind, PlanNodeKind::Sink { .. }) {
                node.why = format!("streamed rewrite; was: {}", node.why);
            }
        }
        plan
    }

    /// The scalar rewrite: every [`PlanNodeKind::VectorScan`] node
    /// becomes the probe node the planner would have emitted with
    /// kernels off — an `IdentityProbe` or `Refute` on the stored
    /// blocking-key positions. Output is **byte-identical**: the
    /// vector and scalar paths enumerate drivers and emit pairs in
    /// the same ascending order. Used when a kernel-bearing plan must
    /// fall back without re-planning (and as the equivalence twin in
    /// tests).
    pub fn rewrite_scalar(&self) -> MatchPlan {
        let mut plan = self.clone();
        for node in &mut plan.nodes {
            if let PlanNodeKind::VectorScan {
                rule,
                key_positions,
                ..
            } = &node.kind
            {
                let rule = rule.clone();
                let strategy = ProbeStrategy::Probe {
                    key_positions: key_positions.clone(),
                };
                let why = format!("scalar rewrite; was: {}", node.why);
                node.label = format!(
                    "{}({})",
                    match rule.family {
                        RuleFamily::Identity => "identity-probe",
                        RuleFamily::Distinct => "refute",
                    },
                    rule.name
                );
                node.kind = match rule.family {
                    RuleFamily::Identity => PlanNodeKind::IdentityProbe { rule, strategy },
                    RuleFamily::Distinct => PlanNodeKind::Refute { rule, strategy },
                };
                node.why = why;
            }
        }
        plan
    }

    /// The index-free rewrite: every probe/cross strategy becomes
    /// `Scan`, fusing into one residual pass — the nested-loop arm.
    /// Same output *set* (emission order differs; the dedup node
    /// absorbs it). `VectorScan` nodes are lowered all the way down
    /// to the scalar scan as well — the degradation ladder must land
    /// on a path with no indexes *and* no kernels. Used by rung 3 of
    /// the ladder and by the memory-budget degradation (which keeps
    /// the current mode). Emission is lowered to buffered as well —
    /// the index-free arm is a degradation target and must run the
    /// historical path.
    pub fn rewrite_index_free(&self) -> MatchPlan {
        let mut plan = self.rewrite_buffered();
        plan.index_free = true;
        for node in &mut plan.nodes {
            if let PlanNodeKind::VectorScan { rule, .. } = &node.kind {
                let rule = rule.clone();
                node.label = format!(
                    "{}({})",
                    match rule.family {
                        RuleFamily::Identity => "identity-probe",
                        RuleFamily::Distinct => "refute",
                    },
                    rule.name
                );
                node.kind = match rule.family {
                    RuleFamily::Identity => PlanNodeKind::IdentityProbe {
                        rule,
                        strategy: ProbeStrategy::Scan,
                    },
                    RuleFamily::Distinct => PlanNodeKind::Refute {
                        rule,
                        strategy: ProbeStrategy::Scan,
                    },
                };
                node.why = format!("index-free rewrite; was: {}", node.why);
                continue;
            }
            match &mut node.kind {
                PlanNodeKind::IdentityProbe { strategy, .. }
                | PlanNodeKind::Refute { strategy, .. }
                    if !matches!(strategy, ProbeStrategy::Scan) =>
                {
                    *strategy = ProbeStrategy::Scan;
                    node.why = format!("index-free rewrite; was: {}", node.why);
                }
                _ => {}
            }
        }
        plan
    }

    /// The probe/refute/vector-scan nodes, in execution order.
    pub fn probe_nodes(&self) -> impl Iterator<Item = &PlanNode> {
        self.nodes.iter().filter(|n| {
            matches!(
                n.kind,
                PlanNodeKind::IdentityProbe { .. }
                    | PlanNodeKind::Refute { .. }
                    | PlanNodeKind::VectorScan { .. }
            )
        })
    }

    /// A short human-readable mode string (`"serial"`,
    /// `"serial(auto-small)"`, `"parallel(8)"`).
    pub fn mode_display(&self) -> String {
        match self.mode {
            ExecMode::Serial { auto_small: true } => "serial(auto-small)".to_string(),
            ExecMode::Serial { auto_small: false } => "serial".to_string(),
            ExecMode::Parallel { workers } => format!("parallel({workers})"),
        }
    }

    /// Serializes the plan to JSON (the `eid plan --json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.nodes.len() * 256);
        out.push_str("{\n  \"arm\": ");
        json::push_str_literal(
            &mut out,
            self.arm.arm_label(self.index_free, self.mode.workers()),
        );
        out.push_str(",\n  \"mode\": ");
        json::push_str_literal(&mut out, &self.mode_display());
        out.push_str(",\n  \"mode_why\": ");
        json::push_str_literal(&mut out, &self.mode_why);
        out.push_str(",\n  \"workers\": ");
        out.push_str(&self.mode.workers().to_string());
        out.push_str(",\n  \"index_free\": ");
        out.push_str(if self.index_free { "true" } else { "false" });
        out.push_str(",\n  \"emit\": ");
        json::push_str_literal(&mut out, &self.emit.display());
        out.push_str(",\n  \"emit_why\": ");
        json::push_str_literal(&mut out, &self.emit_why);
        out.push_str(",\n  \"stats\": ");
        json::push_str_literal(&mut out, self.stats_source.as_str());
        out.push_str(",\n  \"sink_shards\": ");
        out.push_str(&self.emit.shards.to_string());
        if self.emit.mode == EmitMode::Spilled {
            out.push_str(",\n  \"spill_dir\": ");
            json::push_str_literal(
                &mut out,
                if self.emit.dir.is_empty() {
                    "<temp>"
                } else {
                    &self.emit.dir
                },
            );
            out.push_str(",\n  \"spill_shard_bytes\": ");
            out.push_str(&self.emit.shard_bytes.to_string());
        }
        out.push_str(",\n  \"nodes\": [\n");
        for (i, node) in self.nodes.iter().enumerate() {
            out.push_str("    {\"id\": ");
            out.push_str(&node.id.to_string());
            out.push_str(", \"kind\": ");
            json::push_str_literal(&mut out, node.kind.as_str());
            match &node.kind {
                PlanNodeKind::IdentityProbe { rule, strategy }
                | PlanNodeKind::Refute { rule, strategy } => {
                    out.push_str(", \"rule\": ");
                    json::push_str_literal(&mut out, &rule.name);
                    out.push_str(", \"family\": ");
                    json::push_str_literal(&mut out, rule.family.as_str());
                    out.push_str(", \"strategy\": ");
                    json::push_str_literal(&mut out, strategy.as_str());
                    if let ProbeStrategy::Probe { key_positions } = strategy {
                        out.push_str(", \"key_positions\": [");
                        for (k, p) in key_positions.iter().enumerate() {
                            if k > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&p.to_string());
                        }
                        out.push(']');
                    }
                }
                PlanNodeKind::VectorScan {
                    rule,
                    shape,
                    lanes,
                    tile_rows,
                    key_positions,
                } => {
                    out.push_str(", \"rule\": ");
                    json::push_str_literal(&mut out, &rule.name);
                    out.push_str(", \"family\": ");
                    json::push_str_literal(&mut out, rule.family.as_str());
                    out.push_str(", \"shape\": ");
                    json::push_str_literal(&mut out, shape.as_str());
                    out.push_str(", \"lanes\": ");
                    out.push_str(&lanes.to_string());
                    out.push_str(", \"tile_rows\": ");
                    out.push_str(&tile_rows.to_string());
                    out.push_str(", \"key_positions\": [");
                    for (k, p) in key_positions.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&p.to_string());
                    }
                    out.push(']');
                }
                PlanNodeKind::Derive { side } => {
                    out.push_str(", \"side\": ");
                    json::push_str_literal(&mut out, side);
                }
                PlanNodeKind::Sink { shards } => {
                    out.push_str(", \"shards\": ");
                    out.push_str(&shards.to_string());
                }
                _ => {}
            }
            if let Some(est) = node.est_pairs {
                out.push_str(", \"est_pairs\": ");
                out.push_str(&est.to_string());
            }
            out.push_str(", \"label\": ");
            json::push_str_literal(&mut out, &node.label);
            out.push_str(", \"why\": ");
            json::push_str_literal(&mut out, &node.why);
            out.push_str(", \"span\": ");
            json::push_str_literal(&mut out, &node.span);
            out.push_str(", \"inputs\": [");
            for (k, inp) in node.inputs.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&inp.to_string());
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.nodes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatchPlan {
        MatchPlan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    kind: PlanNodeKind::Derive { side: "R" },
                    label: "derive(R)".into(),
                    why: "extend R with the extended key".into(),
                    span: "match/derive/r".into(),
                    inputs: vec![],
                    est_pairs: None,
                },
                PlanNode {
                    id: 1,
                    kind: PlanNodeKind::IdentityProbe {
                        rule: RuleRef {
                            family: RuleFamily::Identity,
                            index: 0,
                            name: "key-eq".into(),
                        },
                        strategy: ProbeStrategy::Probe {
                            key_positions: vec![0, 1],
                        },
                    },
                    label: "identity-probe(key-eq)".into(),
                    why: "key (name, cuisine)".into(),
                    span: "match/engine/identity/key-eq".into(),
                    inputs: vec![0],
                    est_pairs: Some(9_000_000),
                },
            ],
            mode: ExecMode::Parallel { workers: 4 },
            mode_why: "est 9000000 pairs ≥ 50000 threshold".into(),
            arm: ArmHint::Auto,
            index_free: false,
            record_identity: true,
            record_distinct: true,
            emit: Emit::buffered(),
            emit_why: "est 100 raw negative pairs below the stream threshold".into(),
            stats_source: StatsSource::default(),
        }
    }

    #[test]
    fn rewrites_are_pure_and_compose() {
        let plan = sample();
        let serial = plan.rewrite_serial();
        assert_eq!(serial.mode, ExecMode::Serial { auto_small: false });
        assert_eq!(serial.nodes, plan.nodes); // nodes untouched
        let nested = plan.rewrite_index_free().rewrite_serial();
        assert!(nested.index_free);
        assert!(nested.probe_nodes().all(|n| matches!(
            n.kind,
            PlanNodeKind::IdentityProbe {
                strategy: ProbeStrategy::Scan,
                ..
            }
        )));
        assert_eq!(nested.arm.arm_label(nested.index_free, 1), "nested_loop");
        // The original is untouched.
        assert!(!plan.index_free);
    }

    fn streamed_sample() -> MatchPlan {
        let mut plan = sample();
        plan.emit = Emit {
            mode: EmitMode::Streamed,
            shards: 5,
            dir: String::new(),
            shard_bytes: 0,
        };
        plan.emit_why = "est 21000000 raw negative pairs ≥ threshold".into();
        plan.nodes.push(PlanNode {
            id: 2,
            kind: PlanNodeKind::Sink { shards: 5 },
            label: "sink(5 shards)".into(),
            why: "est 21000000 raw negative pairs ≥ threshold".into(),
            span: "match/engine/sink_merge".into(),
            inputs: vec![1],
            est_pairs: None,
        });
        plan
    }

    #[test]
    fn buffered_rewrite_lowers_the_sink_node_and_the_ladder_uses_it() {
        let plan = streamed_sample();
        let buffered = plan.rewrite_buffered();
        assert_eq!(buffered.emit, Emit::buffered());
        assert!(matches!(buffered.nodes[2].kind, PlanNodeKind::Dedup));
        assert_eq!(buffered.nodes[2].label, "dedup");
        assert!(buffered.nodes[2].why.starts_with("buffered rewrite; was: "));
        // Both degradation rewrites land on buffered emission.
        assert_eq!(plan.rewrite_serial().emit, Emit::buffered());
        let nested = plan.rewrite_index_free();
        assert_eq!(nested.emit, Emit::buffered());
        assert!(!nested
            .nodes
            .iter()
            .any(|n| matches!(n.kind, PlanNodeKind::Sink { .. })));
        // A buffered plan passes through unchanged, and the original
        // streamed plan is untouched.
        assert_eq!(buffered.rewrite_buffered().nodes, buffered.nodes);
        assert!(matches!(plan.nodes[2].kind, PlanNodeKind::Sink { .. }));
        // JSON carries the emit decision and the shard count.
        let json = plan.to_json();
        for needle in [
            "\"emit\": \"streamed(5)\"",
            "\"sink_shards\": 5",
            "\"kind\": \"sink\"",
            "\"shards\": 5",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    fn spilled_sample() -> MatchPlan {
        let mut plan = streamed_sample();
        plan.emit = Emit {
            mode: EmitMode::Spilled,
            shards: 5,
            dir: "/tmp/eid-test".into(),
            shard_bytes: 1 << 20,
        };
        plan.emit_why = "est 84000000 pair bytes over the 33554432-byte budget".into();
        plan
    }

    #[test]
    fn streamed_rewrite_lowers_spilled_one_rung_and_composes() {
        let plan = spilled_sample();
        let streamed = plan.rewrite_streamed();
        assert_eq!(streamed.emit.mode, EmitMode::Streamed);
        assert_eq!(streamed.emit.shards, 5); // geometry survives
        assert_eq!(streamed.emit.dir, "");
        assert_eq!(streamed.emit.shard_bytes, 0);
        assert!(streamed.emit_why.starts_with("streamed rewrite; was: "));
        // The Sink node stays a Sink node — only its why is annotated.
        assert!(matches!(
            streamed.nodes[2].kind,
            PlanNodeKind::Sink { shards: 5 }
        ));
        assert!(streamed.nodes[2].why.starts_with("streamed rewrite; was: "));
        // Idempotent on streamed, no-op on buffered.
        assert_eq!(streamed.rewrite_streamed(), streamed);
        let buffered = plan.rewrite_buffered();
        assert_eq!(buffered.rewrite_streamed(), buffered);
        // Composition law: streamed then buffered == buffered, up to
        // the why trail.
        let composed = plan.rewrite_streamed().rewrite_buffered();
        assert_eq!(composed.emit, Emit::buffered());
        assert!(matches!(composed.nodes[2].kind, PlanNodeKind::Dedup));
        // Degradation rewrites lower spilled all the way to buffered.
        assert_eq!(plan.rewrite_serial().emit, Emit::buffered());
        assert_eq!(plan.rewrite_index_free().emit, Emit::buffered());
        // The original plan is untouched.
        assert_eq!(plan.emit.mode, EmitMode::Spilled);
    }

    #[test]
    fn spilled_json_carries_the_spill_decision() {
        let json = spilled_sample().to_json();
        for needle in [
            "\"emit\": \"spilled(5)\"",
            "\"sink_shards\": 5",
            "\"spill_dir\": \"/tmp/eid-test\"",
            "\"spill_shard_bytes\": 1048576",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Non-spilled plans don't grow the spill keys.
        assert!(!streamed_sample().to_json().contains("spill_dir"));
    }

    #[test]
    fn arm_labels_follow_workers_and_hint() {
        assert_eq!(ArmHint::Auto.arm_label(false, 4), "blocked_parallel");
        assert_eq!(ArmHint::Auto.arm_label(false, 1), "blocked");
        assert_eq!(ArmHint::Auto.arm_label(true, 4), "nested_loop");
        assert_eq!(ArmHint::Hash.arm_label(false, 1), "hash");
        assert_eq!(ArmHint::NestedLoop.arm_label(false, 1), "nested_loop");
    }

    fn vector_sample() -> MatchPlan {
        let mut plan = sample();
        plan.nodes.push(PlanNode {
            id: 2,
            kind: PlanNodeKind::VectorScan {
                rule: RuleRef {
                    family: RuleFamily::Distinct,
                    index: 3,
                    name: "r3".into(),
                },
                shape: KernelShape::Disagree,
                lanes: 16,
                tile_rows: 65536,
                key_positions: vec![1],
            },
            label: "vector-scan(r3)".into(),
            why: "vector disagree kernel: est 161000 pairs; lanes=16, tile=65536 rows".into(),
            span: "match/engine/refute/r3".into(),
            inputs: vec![0],
            est_pairs: Some(161_000),
        });
        plan
    }

    #[test]
    fn scalar_rewrite_lowers_vector_scans_to_their_probe_twin() {
        let plan = vector_sample();
        let scalar = plan.rewrite_scalar();
        let node = &scalar.nodes[2];
        match &node.kind {
            PlanNodeKind::Refute {
                rule,
                strategy: ProbeStrategy::Probe { key_positions },
            } => {
                assert_eq!(rule.name, "r3");
                assert_eq!(key_positions, &vec![1]);
            }
            other => panic!("expected scalar refute probe, got {other:?}"),
        }
        assert!(
            node.why.starts_with("scalar rewrite; was: "),
            "{}",
            node.why
        );
        assert_eq!(node.label, "refute(r3)");
        // Non-vector nodes are untouched; the original plan is pure.
        assert_eq!(scalar.nodes[..2], plan.nodes[..2]);
        assert!(matches!(
            plan.nodes[2].kind,
            PlanNodeKind::VectorScan { .. }
        ));
    }

    #[test]
    fn index_free_rewrite_lowers_vector_scans_to_scan() {
        let nested = vector_sample().rewrite_index_free();
        assert!(nested.index_free);
        assert!(matches!(
            nested.nodes[2].kind,
            PlanNodeKind::Refute {
                strategy: ProbeStrategy::Scan,
                ..
            }
        ));
        assert!(nested.nodes[2].why.starts_with("index-free rewrite; was: "));
    }

    #[test]
    fn vector_scan_json_round_trips_the_node_kind() {
        let json = vector_sample().to_json();
        for needle in [
            "\"kind\": \"vector-scan\"",
            "\"rule\": \"r3\"",
            "\"family\": \"distinct\"",
            "\"shape\": \"disagree\"",
            "\"lanes\": 16",
            "\"tile_rows\": 65536",
            "\"key_positions\": [1]",
            "\"est_pairs\": 161000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_has_the_expected_shape() {
        let json = sample().to_json();
        for needle in [
            "\"arm\": \"blocked_parallel\"",
            "\"mode\": \"parallel(4)\"",
            "\"nodes\": [",
            "\"kind\": \"identity-probe\"",
            "\"rule\": \"key-eq\"",
            "\"strategy\": \"probe\"",
            "\"key_positions\": [0, 1]",
            "\"why\": ",
            "\"inputs\": [0]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
