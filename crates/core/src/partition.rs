//! The Figure-3 partition: matching / not-matching / undetermined.
//!
//! "Based on the function values, all pairs of tuples can be
//! partitioned into three disjoint sets, namely identical pairs,
//! distinct pairs, and undetermined pairs." As knowledge grows, a
//! monotonic technique only moves pairs *out* of the undetermined
//! region (§3.3); completeness is reached when it is empty.

use std::fmt;

use crate::matcher::MatchOutcome;

/// Sizes of the three regions of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Partition {
    /// Pairs proven to model the same entity (`MT_RS`).
    pub matching: usize,
    /// Pairs proven distinct (`NMT_RS`).
    pub not_matching: usize,
    /// Pairs the process cannot decide.
    pub undetermined: usize,
}

impl Partition {
    /// Builds the partition from a match outcome.
    pub fn of(outcome: &MatchOutcome) -> Partition {
        Partition {
            matching: outcome.matching.len(),
            not_matching: outcome.negative.len(),
            undetermined: outcome.undetermined,
        }
    }

    /// Total number of pairs.
    pub fn total(&self) -> usize {
        self.matching + self.not_matching + self.undetermined
    }

    /// The completeness ratio: decided pairs / total pairs
    /// (1.0 when the undetermined set is empty; 1.0 for zero pairs).
    pub fn completeness(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.matching + self.not_matching) as f64 / total as f64
        }
    }

    /// Whether entity identification is complete (§3.2: the process
    /// never answers "undetermined").
    pub fn is_complete(&self) -> bool {
        self.undetermined == 0
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matching: {}, not matching: {}, undetermined: {} (completeness {:.1}%)",
            self.matching,
            self.not_matching,
            self.undetermined,
            self.completeness() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let p = Partition {
            matching: 3,
            not_matching: 5,
            undetermined: 2,
        };
        assert_eq!(p.total(), 10);
        assert!((p.completeness() - 0.8).abs() < 1e-12);
        assert!(!p.is_complete());
    }

    #[test]
    fn complete_when_no_undetermined() {
        let p = Partition {
            matching: 1,
            not_matching: 1,
            undetermined: 0,
        };
        assert!(p.is_complete());
        assert_eq!(p.completeness(), 1.0);
    }

    #[test]
    fn empty_partition_counts_as_complete() {
        let p = Partition::default();
        assert_eq!(p.completeness(), 1.0);
        assert!(p.is_complete());
    }

    #[test]
    fn display_mentions_all_regions() {
        let p = Partition {
            matching: 1,
            not_matching: 2,
            undetermined: 3,
        };
        let s = p.to_string();
        assert!(s.contains("matching: 1"));
        assert!(s.contains("undetermined: 3"));
    }
}
