//! An interactive-style session reproducing the Prolog prototype
//! (§6.3).
//!
//! The prototype's workflow:
//!
//! 1. `setup_extkey` — lists the candidate extended-key attributes,
//!    lets the user pick a subset, regenerates the matching-table
//!    rule, and verifies soundness, printing either
//!    `Message: The extended key is verified.` or
//!    `Message: The extended key causes unsound matching result.`;
//! 2. `print_matchtable` — prints `MT_RS` sorted;
//! 3. `print_integ_table` — prints the integrated table `T_RS`.
//!
//! [`Session`] packages the same steps over the native engine and
//! renders tables in the prototype's format.

use eid_ilfd::IlfdSet;
use eid_relational::display::render_default;
use eid_relational::{AttrName, Relation};
use eid_rules::ExtendedKey;

use crate::error::{CoreError, Result};
use crate::integrate::IntegratedTable;
use crate::matcher::{EntityMatcher, MatchConfig, MatchOutcome};

/// The message printed when verification passes.
pub const MSG_VERIFIED: &str = "Message: The extended key is verified.";
/// The message printed when the matching result is unsound.
pub const MSG_UNSOUND: &str = "Message: The extended key causes unsound matching result.";

/// Result of `setup_extkey`: the outcome plus the prototype's
/// verification verdict.
#[derive(Debug, Clone)]
pub struct SetupReport {
    /// Whether the §3.2 uniqueness/consistency checks passed.
    pub verified: bool,
    /// The prototype's message line.
    pub message: &'static str,
    /// The matching run behind the verdict.
    pub outcome: MatchOutcome,
}

/// A prototype-style session over two relations and an ILFD set.
#[derive(Debug, Clone)]
pub struct Session {
    r: Relation,
    s: Relation,
    ilfds: IlfdSet,
    extended_key: Option<ExtendedKey>,
    outcome: Option<MatchOutcome>,
}

impl Session {
    /// Opens a session.
    pub fn new(r: Relation, s: Relation, ilfds: IlfdSet) -> Self {
        Session {
            r,
            s,
            ilfds,
            extended_key: None,
            outcome: None,
        }
    }

    /// Opens a session over an encoded [`Dataset`](crate::store::Dataset)
    /// — relations and ILFDs come from the store, so a persistent
    /// dataset can be explored interactively without re-supplying CSVs
    /// or rules. `setup_extended_key` still re-runs the matcher (the
    /// session exists to try *different* keys, which invalidates the
    /// persisted extension).
    pub fn from_dataset(dataset: &crate::store::Dataset) -> Result<Self> {
        Ok(Session::new(
            dataset.r()?.clone(),
            dataset.s()?.clone(),
            dataset.ilfds().clone(),
        ))
    }

    /// The candidate extended-key attributes the prototype would list:
    /// attributes that exist in (or are ILFD-derivable for) *both*
    /// relations, so cross-equality over them is meaningful.
    pub fn candidate_attributes(&self) -> Vec<AttrName> {
        let derivable: Vec<AttrName> = self
            .ilfds
            .iter()
            .flat_map(|i| i.consequent().attributes())
            .collect();
        let available = |schema: &eid_relational::Schema, a: &AttrName| {
            schema.has_attribute(a) || derivable.contains(a)
        };
        let mut out: Vec<AttrName> = Vec::new();
        for a in self
            .r
            .schema()
            .attribute_names()
            .chain(self.s.schema().attribute_names())
        {
            if !out.contains(a) && available(self.r.schema(), a) && available(self.s.schema(), a) {
                out.push(a.clone());
            }
        }
        out
    }

    /// `setup_extkey`: install an extended key, run the matcher, and
    /// verify. An unsound key is installed anyway (the prototype only
    /// warns), so its tables can be inspected.
    pub fn setup_extended_key(&mut self, attrs: &[&str]) -> Result<SetupReport> {
        let key = ExtendedKey::of_strs(attrs);
        let config = MatchConfig::new(key.clone(), self.ilfds.clone());
        let outcome = EntityMatcher::new(self.r.clone(), self.s.clone(), config)?.run()?;
        let verified = outcome.verify().is_ok();
        self.extended_key = Some(key);
        self.outcome = Some(outcome.clone());
        Ok(SetupReport {
            verified,
            message: if verified { MSG_VERIFIED } else { MSG_UNSOUND },
            outcome,
        })
    }

    /// The installed extended key, if any.
    pub fn extended_key(&self) -> Option<&ExtendedKey> {
        self.extended_key.as_ref()
    }

    /// The last matching outcome, if `setup_extended_key` has run.
    pub fn outcome(&self) -> Option<&MatchOutcome> {
        self.outcome.as_ref()
    }

    fn require_outcome(&self) -> Result<&MatchOutcome> {
        self.outcome.as_ref().ok_or(CoreError::EmptyExtendedKey)
    }

    /// `print_matchtable`: renders `MT_RS` in the prototype's format.
    pub fn matching_table_display(&self) -> Result<String> {
        let outcome = self.require_outcome()?;
        let rel = outcome.matching.to_relation("MT")?;
        Ok(render_default("matching table", &rel))
    }

    /// `print_integ_table`: renders the integrated table.
    pub fn integrated_table_display(&self) -> Result<String> {
        let outcome = self.require_outcome()?;
        let key = self
            .extended_key
            .as_ref()
            .ok_or(CoreError::EmptyExtendedKey)?;
        let t = IntegratedTable::build(&self.r, &self.s, outcome, key)?;
        Ok(render_default("integrated table", t.relation()))
    }

    /// `plan`: renders the match plan the cost-based planner would
    /// execute for the installed extended key — blocking keys, probe
    /// strategies, serial/parallel — without running anything. (The
    /// Prolog prototype had no analogue; this is the native engine
    /// showing its §4.2 pipeline before committing to it.)
    pub fn plan_display(&self) -> Result<String> {
        let key = self
            .extended_key
            .as_ref()
            .ok_or(CoreError::EmptyExtendedKey)?;
        let config = MatchConfig::new(key.clone(), self.ilfds.clone());
        let matcher = EntityMatcher::new(self.r.clone(), self.s.clone(), config)?;
        let plan = matcher.plan()?;
        Ok(crate::explain::render_plan(&plan))
    }

    /// Renders the extended relation `R′` (the prototype's
    /// `print_RRtable`).
    pub fn extended_r_display(&self) -> Result<String> {
        let outcome = self.require_outcome()?;
        Ok(render_default(
            "extended R table",
            &outcome.extended_r.relation,
        ))
    }

    /// Renders the extended relation `S′` (the prototype's
    /// `print_SStable`).
    pub fn extended_s_display(&self) -> Result<String> {
        let outcome = self.require_outcome()?;
        Ok(render_default(
            "extended S table",
            &outcome.extended_s.relation,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::Ilfd;
    use eid_relational::Schema;

    fn session() -> Session {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
        r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
        r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
        r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
            .unwrap();
        r.insert_strs(&["villagewok", "chinese", "wash_ave"])
            .unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "hunan", "roseville"])
            .unwrap();
        s.insert_strs(&["twincities", "sichuan", "hennepin"])
            .unwrap();
        s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
        s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
            .unwrap();

        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
            Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
            Ilfd::of_strs(
                &[("name", "twincities"), ("street", "co_b2")],
                &[("speciality", "hunan")],
            ),
            Ilfd::of_strs(
                &[("name", "anjuman"), ("street", "le_salle_ave")],
                &[("speciality", "mughalai")],
            ),
            Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
            Ilfd::of_strs(
                &[("name", "itsgreek"), ("county", "ramsey")],
                &[("speciality", "gyros")],
            ),
        ]
        .into_iter()
        .collect();
        Session::new(r, s, ilfds)
    }

    #[test]
    fn candidate_attributes_are_name_spec_cui() {
        let s = session();
        let cands = s.candidate_attributes();
        // The prototype lists Name, Spec, Cui (and our engine also
        // sees county, derivable for R via I7).
        assert!(cands.contains(&AttrName::new("name")));
        assert!(cands.contains(&AttrName::new("cuisine")));
        assert!(cands.contains(&AttrName::new("speciality")));
        assert!(!cands.contains(&AttrName::new("street"))); // R-only, underivable for S
    }

    #[test]
    fn good_key_is_verified() {
        let mut s = session();
        let rep = s
            .setup_extended_key(&["name", "cuisine", "speciality"])
            .unwrap();
        assert!(rep.verified);
        assert_eq!(rep.message, MSG_VERIFIED);
        assert_eq!(rep.outcome.matching.len(), 3);
    }

    #[test]
    fn name_only_key_warns_unsound() {
        // §6.3's second transcript: extended key {Name} matches the two
        // twincities R tuples to the two twincities S tuples (4 pairs),
        // violating uniqueness.
        let mut s = session();
        let rep = s.setup_extended_key(&["name"]).unwrap();
        assert!(!rep.verified);
        assert_eq!(rep.message, MSG_UNSOUND);
    }

    #[test]
    fn matching_table_display_matches_prototype_rows() {
        let mut s = session();
        s.setup_extended_key(&["name", "cuisine", "speciality"])
            .unwrap();
        let out = s.matching_table_display().unwrap();
        assert!(out.starts_with("matching table\n"));
        // Sorted rows: anjuman, itsgreek, twincities (as in §6.3).
        let a = out.find("anjuman").unwrap();
        let i = out.find("itsgreek").unwrap();
        let t = out.find("twincities").unwrap();
        assert!(a < i && i < t);
        assert!(out.contains("mughalai"));
        assert!(out.contains("gyros"));
        assert!(out.contains("hunan"));
    }

    #[test]
    fn integrated_table_display_has_six_rows_and_nulls() {
        let mut s = session();
        s.setup_extended_key(&["name", "cuisine", "speciality"])
            .unwrap();
        let out = s.integrated_table_display().unwrap();
        assert!(out.starts_with("integrated table\n"));
        assert!(out.contains("null"));
        // 6 data rows (3 merged, 2 R-only, 1 S-only).
        let data_rows = out
            .lines()
            .skip(4) // title, rule, header, dashes
            .filter(|l| !l.trim().is_empty())
            .count();
        assert_eq!(data_rows, 6);
    }

    #[test]
    fn displays_require_setup() {
        let s = session();
        assert!(s.matching_table_display().is_err());
        assert!(s.integrated_table_display().is_err());
        assert!(s.extended_r_display().is_err());
    }

    #[test]
    fn plan_display_shows_blocking_keys() {
        let mut s = session();
        assert!(s.plan_display().is_err()); // requires setup_extkey
        s.setup_extended_key(&["name", "cuisine", "speciality"])
            .unwrap();
        let out = s.plan_display().unwrap();
        assert!(out.starts_with("match plan — arm "), "{out}");
        assert!(out.contains("blocking key"), "{out}");
    }

    #[test]
    fn extended_tables_render() {
        let mut s = session();
        s.setup_extended_key(&["name", "cuisine", "speciality"])
            .unwrap();
        let r = s.extended_r_display().unwrap();
        assert!(r.contains("speciality"));
        let sdisp = s.extended_s_display().unwrap();
        assert!(sdisp.contains("cuisine"));
    }
}
