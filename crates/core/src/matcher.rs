//! The entity matcher — §4's proposed technique, end to end.
//!
//! Pipeline (§4.2):
//! 1. extend `R` and `S` with their missing extended-key attributes
//!    (NULL-filled) — [`crate::extend`];
//! 2. apply the ILFDs to derive the missing values;
//! 3. match: every pair of extended tuples with identical **non-NULL**
//!    extended-key values enters the matching table `MT_RS`;
//!    additional identity rules (if any) are evaluated pairwise;
//! 4. refute: distinctness rules — including those every ILFD induces
//!    via Proposition 1 — populate the negative matching table
//!    `NMT_RS`;
//! 5. verify: the uniqueness and consistency constraints of §3.2.
//!
//! Steps 3–4 run through one path: the matcher asks the
//! [`Executor`] for a cost-based
//! [`MatchPlan`] (cached across runs of the same matcher) and
//! executes it. [`JoinAlgorithm`] survives as the planner *hint*:
//! [`JoinAlgorithm::Blocked`] (the default) lets the planner choose
//! blocking keys and parallelism freely — identity rules become
//! inverted-index hash joins on their most selective columns,
//! ILFD-induced distinctness rules disagreement probes, the rest a
//! compiled pairwise scan. [`JoinAlgorithm::Hash`] pins the
//! extended-key rule to a full-key hash join and scans everything
//! else serially (the seed arm's shape). [`JoinAlgorithm::NestedLoop`]
//! pins every rule to the exhaustive scan — the correctness oracle
//! the other two are equivalence-tested against, and the baseline for
//! the scaling benchmarks.
//!
//! Every arm runs under a [`RunGuard`] (see [`crate::runtime`]):
//! budgets and cancellation are honoured at chunk boundaries, and a
//! tripped run returns [`CoreError::Aborted`] with partial stats
//! instead of a half-built outcome.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eid_ilfd::{IlfdSet, Strategy};
use eid_obs::alloc::{self, StageScope};
use eid_obs::{MatchReport, Recorder, Trace};
use eid_relational::{Relation, Tuple};
use eid_rules::{ExtendedKey, RuleBase};

use crate::engine::{EnginePairs, Executor};
use crate::error::{CoreError, Result};
use crate::extend::{extend_relation, Extended};
use crate::match_table::PairTable;
use crate::plan::{
    ArmHint, EmitHint, EmitMode, ExecMode, MatchPlan, PlanNodeKind, ProbeStrategy, StatsSource,
};
use crate::runtime::{AbortReason, RunBudget, RunGuard};
use crate::sink::PairSet;
use crate::stats::{alloc_slot, counter, label, plan_key_label, span};
use crate::store::Dataset;

/// Below this many raw engine pairs the convert step dedups the two
/// lists sequentially — same rationale as the engine's own serial
/// fallback. The spawn is also skipped outright on single-hardware-
/// thread hosts: a second dedup thread cannot overlap with the first
/// there, so it only adds spawn latency and cold-arena page faults.
const PARALLEL_CONVERT_MIN: usize = 50_000;

/// First-occurrence dedup of an engine pair list, in id space. Takes
/// the list by value and filters it in place: at n=3200 the negative
/// list is ~40 MB, and a second allocation of that size is re-faulted
/// from fresh zero pages on every run (it exceeds glibc's mmap
/// threshold cap, so the pages are returned to the kernel on free).
fn dedup_pairs(
    mut list: Vec<(u32, u32)>,
    r_len: usize,
    s_len: usize,
) -> (Vec<(u32, u32)>, PairSet) {
    let mut set = PairSet::new(r_len, s_len, list.len());
    list.retain(|&(i, j)| set.insert(i, j));
    (list, set)
}

/// Dedups both raw engine pair lists — the one convert code path for
/// the parallel and serial cases alike. With `parallel` set, the
/// negative list dedups on a scoped worker while the main thread
/// handles the matching list; the two are independent until the
/// overlap count. A worker that dies takes the raw negative list with
/// it — there is nothing to degrade to, so that surfaces as
/// [`CoreError::WorkerPanic`].
type DedupedPairs = ((Vec<(u32, u32)>, PairSet), (Vec<(u32, u32)>, PairSet));

fn dedup_pair_lists(
    raw_matching: Vec<(u32, u32)>,
    raw_negative: Vec<(u32, u32)>,
    r_len: usize,
    s_len: usize,
    parallel: bool,
) -> Result<DedupedPairs> {
    if parallel {
        std::thread::scope(|scope| {
            let neg = scope.spawn(|| dedup_pairs(raw_negative, r_len, s_len));
            let mat = dedup_pairs(raw_matching, r_len, s_len);
            match neg.join() {
                Ok(n) => Ok((mat, n)),
                Err(_) => Err(CoreError::WorkerPanic {
                    site: "convert/worker".into(),
                }),
            }
        })
    } else {
        Ok((
            dedup_pairs(raw_matching, r_len, s_len),
            dedup_pairs(raw_negative, r_len, s_len),
        ))
    }
}

/// How the matching and refutation phases are executed — since the
/// plan-IR refactor, a planner *hint* rather than a separate code
/// path (every arm lowers to a [`MatchPlan`] run by the executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgorithm {
    /// Let the planner choose: precompiled rules, cost-chosen
    /// per-rule inverted-index blocking, chunked data parallelism.
    /// Output-sensitive.
    #[default]
    Blocked,
    /// Pin the extended-key rule to a full-key hash join (linear
    /// expected time) and everything else to serial pairwise scans —
    /// the seed arm's shape.
    Hash,
    /// Pin every rule to the exhaustive serial scan of all
    /// `|R|·|S|` pairs — the oracle.
    NestedLoop,
}

/// Configuration of a matching run.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// The extended key `K_Ext` asserted by the DBA.
    pub extended_key: ExtendedKey,
    /// The available ILFDs (used for derivation, and for distinctness
    /// via Proposition 1 when `use_ilfd_distinctness` is set).
    pub ilfds: IlfdSet,
    /// Derivation strategy for missing values.
    pub strategy: Strategy,
    /// Join algorithm for the identity phase.
    pub join: JoinAlgorithm,
    /// Extra identity/distinctness rules beyond extended-key
    /// equivalence (e.g. hand-asserted rules like the paper's r1/r3).
    pub extra_rules: RuleBase,
    /// Whether each ILFD also contributes its Proposition-1
    /// distinctness rule to the refutation phase.
    pub use_ilfd_distinctness: bool,
    /// Whether to run the refutation phase at all. Off for
    /// pure-matching scaling benchmarks.
    pub collect_negative: bool,
    /// Worker threads for [`JoinAlgorithm::Blocked`]: `0` uses the
    /// machine's available parallelism, `1` runs serially. The
    /// result is identical for any value.
    pub threads: usize,
    /// Resource budget for the run (deadline, max candidate pairs,
    /// max pair-list bytes). Unlimited by default.
    pub budget: RunBudget,
    /// Whether the planner may dispatch kernel-eligible rules to
    /// vectorized `VectorScan` nodes (defaults to the `EID_KERNELS`
    /// environment setting). Classification is identical either way.
    pub kernels: bool,
    /// Whether to capture an execution timeline
    /// ([`MatchOutcome::trace`], exportable as Chrome `trace_event`
    /// JSON). Off by default — tracing costs a few hundred bytes per
    /// engine task when on, nothing when off.
    pub trace: bool,
    /// Emission-path hint for the refutation phase:
    /// [`EmitHint::Streamed`] folds dedup into emission via sharded
    /// bitset sinks, [`EmitHint::Buffered`] materializes raw pair
    /// lists, [`EmitHint::Auto`] (the default) streams above the
    /// planner's pair-volume threshold. Classification is identical
    /// either way.
    pub emit: EmitHint,
    /// Whether sharded sinks may spill to disk when the pair volume
    /// exceeds [`RunBudget::max_pair_bytes`]. On (the default), a
    /// tight byte budget degrades to out-of-core emission instead of
    /// aborting; off (`--no-spill`) restores abort as the only
    /// response to a tripped byte budget.
    pub spill: bool,
    /// Parent directory for spill files. `None` (the default) uses
    /// the system temp dir; each run creates — and removes — its own
    /// uniquely-named subdirectory underneath.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Keep the spill directory after the run instead of removing it
    /// (`--keep-spill`) — a debugging escape hatch.
    pub keep_spill: bool,
}

impl MatchConfig {
    /// The common configuration: an extended key plus ILFDs,
    /// first-match derivation, the blocked engine with automatic
    /// parallelism, ILFD distinctness on.
    pub fn new(extended_key: ExtendedKey, ilfds: IlfdSet) -> Self {
        MatchConfig {
            extended_key,
            ilfds,
            strategy: Strategy::FirstMatch,
            join: JoinAlgorithm::Blocked,
            extra_rules: RuleBase::new(),
            use_ilfd_distinctness: true,
            collect_negative: true,
            threads: 0,
            budget: RunBudget::default(),
            kernels: crate::kernels::enabled_default(),
            trace: false,
            emit: EmitHint::Auto,
            spill: true,
            spill_dir: None,
            keep_spill: false,
        }
    }
}

/// The complete result of a matching run.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// The matching table `MT_RS` (key-value pairs).
    pub matching: PairTable,
    /// The negative matching table `NMT_RS`.
    pub negative: PairTable,
    /// Extended relation `R′` with derivation reports.
    pub extended_r: Extended,
    /// Extended relation `S′` with derivation reports.
    pub extended_s: Extended,
    /// Number of pairs left undetermined
    /// (`|R|·|S| − |MT| − |NMT|`, Figure 3's middle region).
    pub undetermined: usize,
    /// What the run observed: per-stage timings, engine counters,
    /// task-time histogram. Names are the [`crate::stats`]
    /// constants; the schema is documented in DESIGN.md.
    pub stats: MatchReport,
    /// The execution timeline, when [`MatchConfig::trace`] was set:
    /// one slice per engine task attributed to its plan node and
    /// worker, with nested kernel-tile slices. Serialize with
    /// [`Trace::to_chrome_json`] for Perfetto / `chrome://tracing`.
    pub trace: Option<Trace>,
}

impl MatchOutcome {
    /// Runs the §3.2 verifications: uniqueness of the matching table
    /// and its consistency with the negative table.
    pub fn verify(&self) -> Result<()> {
        self.matching.verify_uniqueness()?;
        self.matching.verify_consistency(&self.negative)
    }

    /// Whether the outcome is *complete*: no undetermined pairs.
    pub fn is_complete(&self) -> bool {
        self.undetermined == 0
    }
}

/// The matcher's memoized plan plus cache hit/miss accounting. The
/// plan depends only on the matcher's relations and config, both
/// immutable, so the first run's plan is reused verbatim by every
/// later run (and shared by clones of the matcher).
#[derive(Debug, Default)]
struct PlanCache {
    slot: Mutex<Option<Arc<MatchPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The entity matcher over a pair of relations.
#[derive(Debug, Clone)]
pub struct EntityMatcher {
    r: Relation,
    s: Relation,
    config: MatchConfig,
    /// When present, the matcher runs against this persistent (or
    /// pre-encoded) dataset: derivation, interning, and columnar
    /// encoding are *skipped* — the store's artifacts are adopted
    /// as-is, and the planner consumes the persisted column
    /// statistics instead of recomputing them.
    dataset: Option<Arc<Dataset>>,
    plan_cache: Arc<PlanCache>,
}

impl EntityMatcher {
    /// Builds a matcher; rejects empty extended keys.
    pub fn new(r: Relation, s: Relation, config: MatchConfig) -> Result<Self> {
        if config.extended_key.is_empty() {
            return Err(CoreError::EmptyExtendedKey);
        }
        Ok(EntityMatcher {
            r,
            s,
            config,
            dataset: None,
            plan_cache: Arc::new(PlanCache::default()),
        })
    }

    /// Builds a matcher over an encoded [`Dataset`] — the store-backed
    /// fast path. The dataset's extended relations, interner, symbol
    /// columns, and column statistics are reused verbatim, so a run
    /// does no derivation, no interning, and no stats recomputation.
    /// The config's extended key and strategy must agree with what the
    /// dataset was encoded under (the persisted extension is only
    /// valid for that pair); a mismatch is a typed
    /// [`CoreError::Store`], not silent re-derivation.
    pub fn from_dataset(dataset: Arc<Dataset>, config: MatchConfig) -> Result<Self> {
        if config.extended_key.is_empty() {
            return Err(CoreError::EmptyExtendedKey);
        }
        if config.extended_key != *dataset.extended_key() {
            return Err(CoreError::Store {
                path: dataset.name().to_string(),
                reason: format!(
                    "extended key mismatch: dataset encoded under {:?}, config asks {:?}",
                    dataset.extended_key().attrs(),
                    config.extended_key.attrs()
                ),
            });
        }
        if config.strategy != dataset.strategy() {
            return Err(CoreError::Store {
                path: dataset.name().to_string(),
                reason: format!(
                    "derivation strategy mismatch: dataset encoded under {:?}, config asks {:?}",
                    dataset.strategy(),
                    config.strategy
                ),
            });
        }
        Ok(EntityMatcher {
            r: dataset.r()?.clone(),
            s: dataset.s()?.clone(),
            config,
            dataset: Some(dataset),
            plan_cache: Arc::new(PlanCache::default()),
        })
    }

    /// The dataset this matcher runs against, when store-backed.
    pub fn dataset(&self) -> Option<&Arc<Dataset>> {
        self.dataset.as_ref()
    }

    /// The source relation `R`.
    pub fn r(&self) -> &Relation {
        &self.r
    }

    /// The source relation `S`.
    pub fn s(&self) -> &Relation {
        &self.s
    }

    /// The configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The full rule base in force: extended-key equivalence, extra
    /// rules, and (optionally) the ILFD-induced distinctness rules.
    pub fn rule_base(&self) -> Result<RuleBase> {
        let mut rb = self.config.extra_rules.clone();
        rb.add_identity(self.config.extended_key.identity_rule()?);
        if self.config.use_ilfd_distinctness {
            rb.add_ilfd_distinctness(&self.config.ilfds);
        }
        Ok(rb)
    }

    /// Runs the pipeline and returns the outcome. The §3.2
    /// constraints are **not** enforced here — call
    /// [`MatchOutcome::verify`] (the prototype's `setup_extkey` does,
    /// printing a warning instead of failing). The configured
    /// [`MatchConfig::budget`] is enforced: a tripped run returns
    /// [`CoreError::Aborted`] with partial stats.
    pub fn run(&self) -> Result<MatchOutcome> {
        self.run_guarded(&RunGuard::new(&self.config.budget))
    }

    /// [`EntityMatcher::run`] under a caller-held [`RunGuard`] — the
    /// caller keeps a clone to [`RunGuard::cancel`] from another
    /// thread. The guard's own budget wins over
    /// [`MatchConfig::budget`] (they are the same object when called
    /// via [`EntityMatcher::run`]).
    pub fn run_guarded(&self, guard: &RunGuard) -> Result<MatchOutcome> {
        let recorder = Recorder::new();
        let run_span = recorder.span(span::MATCH);
        // With the counting allocator installed, the run's measured
        // byte deltas (and per-stage attribution from the StageScope
        // tags below) land in the `alloc/*` counters at the end.
        let alloc_start = alloc::snapshot();
        guard.checkpoint().map_err(|r| abort_of(guard, r))?;
        let derive_span = recorder.span(span::DERIVE);
        let _derive_stage = StageScope::enter(alloc_slot::DERIVE);
        // A dataset-backed run skips derivation entirely: the
        // extended relations (and their derive stats, re-reported
        // below) were persisted at encode time. The spans still open
        // and close so the report schema is identical either way.
        let (ext_r, ext_s) = match &self.dataset {
            Some(ds) => {
                let _r = recorder.span(span::DERIVE_R);
                let ext_r = ds.ext_r()?.clone();
                drop(_r);
                let _s = recorder.span(span::DERIVE_S);
                (ext_r, ds.ext_s()?.clone())
            }
            None => {
                let ext_r = {
                    let _span = recorder.span(span::DERIVE_R);
                    extend_relation(
                        &self.r,
                        &self.config.extended_key,
                        &self.config.ilfds,
                        self.config.strategy,
                    )?
                };
                let ext_s = {
                    let _span = recorder.span(span::DERIVE_S);
                    extend_relation(
                        &self.s,
                        &self.config.extended_key,
                        &self.config.ilfds,
                        self.config.strategy,
                    )?
                };
                (ext_r, ext_s)
            }
        };
        drop(_derive_stage);
        derive_span.finish();
        for (name, r_n, s_n) in [
            (
                counter::DERIVE_TUPLES,
                ext_r.stats.tuples,
                ext_s.stats.tuples,
            ),
            (
                counter::DERIVE_MEMO_HITS,
                ext_r.stats.memo_hits,
                ext_s.stats.memo_hits,
            ),
            (
                counter::DERIVE_MEMO_MISSES,
                ext_r.stats.memo_misses,
                ext_s.stats.memo_misses,
            ),
            (
                counter::DERIVE_ASSIGNED,
                ext_r.stats.assigned,
                ext_s.stats.assigned,
            ),
        ] {
            recorder.add(name, (r_n + s_n) as u64);
        }

        let rb = self.rule_base()?;
        guard.checkpoint().map_err(|r| abort_of(guard, r))?;
        let engine_span = recorder.span(span::ENGINE);
        let engine_stage = StageScope::enter(alloc_slot::ENGINE);
        // Construction compiles + encodes; a panic there (e.g.
        // interner poisoning past the executor's own retry) has no
        // degraded arm to fall to — surface it as a typed error
        // instead of unwinding the caller.
        let executor = catch_unwind(AssertUnwindSafe(|| -> Result<Executor> {
            let mut executor = self.build_executor(&ext_r, &ext_s, &rb, recorder.clone())?;
            executor.set_kernels(self.config.kernels);
            executor.set_trace(self.config.trace);
            executor.set_emit(self.config.emit);
            executor.set_spill(
                self.config.budget.max_pair_bytes,
                self.config.spill,
                self.config
                    .spill_dir
                    .as_ref()
                    .map(|p| p.display().to_string()),
                self.config.keep_spill,
            );
            Ok(executor)
        }))
        .map_err(|_| CoreError::WorkerPanic {
            site: "engine/encode".into(),
        })??;
        let plan = self.cached_plan(&executor);
        let (cache_hits, cache_misses) = self.plan_cache_stats();
        recorder.add(counter::PLAN_CACHE_HITS, cache_hits);
        recorder.add(counter::PLAN_CACHE_MISSES, cache_misses);
        record_plan_labels(&recorder, &plan);
        // An *explicit* emission hint the planner could not honour
        // (structural gate: pinned arm, negatives off, no sink
        // geometry) is surfaced once per run instead of silently
        // ignored — the why is already in the `plan/emit` label.
        let hint_honored = match self.config.emit {
            EmitHint::Auto => true,
            EmitHint::Buffered => plan.emit.mode == EmitMode::Buffered,
            EmitHint::Streamed => plan.emit.mode == EmitMode::Streamed,
            EmitHint::Spilled => plan.emit.mode == EmitMode::Spilled,
        };
        if !hint_honored {
            recorder.add(counter::PLAN_EMIT_HINT_OVERRIDDEN, 1);
        }
        let pairs = executor.execute(&plan, guard)?;
        let trace = executor.take_trace();
        drop(engine_stage);
        engine_span.finish();
        let convert_span = recorder.span(span::CONVERT);
        let convert_stage = StageScope::enter(alloc_slot::CONVERT);
        // Stay in id space: dedup the raw pair lists on row indices
        // (dense bitsets when the pair grid is small enough), count
        // the MT/NMT overlap by popcount, and hand the tables
        // *compact* pair lists plus shared per-row key pools. Key
        // tuples are projected once per row — never per pair — and
        // entry rows only materialize if a consumer asks for
        // Value-land.
        let r_len = self.r.len();
        let s_len = self.s.len();
        let pk_r: Arc<[Tuple]> = self.r.iter().map(|t| self.r.primary_key_of(t)).collect();
        let pk_s: Arc<[Tuple]> = self.s.iter().map(|t| self.s.primary_key_of(t)).collect();
        recorder.add(counter::ALLOC_TUPLES_MATERIALIZED, (r_len + s_len) as u64);
        guard.checkpoint().map_err(|r| abort_of(guard, r))?;
        let EnginePairs {
            matching: raw_matching,
            negative: raw_negative,
            negative_set,
        } = pairs;
        let streamed = negative_set.is_some();
        let raw_pairs = raw_matching.len() + raw_negative.len();
        let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        // `threads: 0` (auto) only spawns when the host is actually
        // multicore; an explicit count is honoured even on one core
        // (like the engine arm, the scoped worker just timeslices).
        let want_parallel = !streamed
            && raw_pairs >= PARALLEL_CONVERT_MIN
            && match self.config.threads {
                1 => false,
                0 => hw_threads > 1,
                _ => true,
            };
        // Fault site checked *before* the spawn: a degraded convert
        // runs the identical dedup serially on this thread, so no
        // data is lost to the dying worker.
        let inject_serial = want_parallel && eid_fault::hit("convert/worker");
        if inject_serial {
            recorder.add(counter::RUNTIME_CONVERT_SERIAL_FALLBACK, 1);
        }
        // The negative side of a streamed run needs no convert work
        // at all: the merged bitset IS the deduplicated table index,
        // handed to `PairTable` as-is (entries decode lazily). Only
        // buffered runs still dedup an explicit negative pair list.
        enum NegIndexes {
            Streamed(PairSet),
            Buffered(Vec<(u32, u32)>, PairSet),
        }
        let ((m_pairs, m_set), neg) = match negative_set {
            Some(n_set) => (
                dedup_pairs(raw_matching, r_len, s_len),
                NegIndexes::Streamed(n_set),
            ),
            None => {
                let (m, (n_pairs, n_set)) = dedup_pair_lists(
                    raw_matching,
                    raw_negative,
                    r_len,
                    s_len,
                    want_parallel && !inject_serial,
                )?;
                (m, NegIndexes::Buffered(n_pairs, n_set))
            }
        };
        // Without the counting allocator the byte budget only sees
        // the engine's 8-bytes-per-pair model: charge convert's own
        // allocations — the dedup sets' capacity — so `--max-mem-mb`
        // trips consistently in both accounting modes. A streamed
        // negative grid was already charged by the engine at shard
        // merge, and nothing new materializes for it here.
        if !alloc::active() {
            let convert_bytes = m_set.capacity_bytes()
                + match &neg {
                    NegIndexes::Streamed(_) => 0,
                    NegIndexes::Buffered(_, n_set) => n_set.capacity_bytes(),
                };
            guard.charge_bytes(convert_bytes);
            guard.checkpoint().map_err(|r| abort_of(guard, r))?;
        }
        let overlap = match &neg {
            // Bitset × bitset: the overlap is a popcount zip, no
            // explicit pair list needed on either side.
            NegIndexes::Streamed(n_set) => m_set.intersection_count(&[], n_set),
            NegIndexes::Buffered(n_pairs, n_set) => m_set.intersection_count(n_pairs, n_set),
        };
        let matching = PairTable::from_compact(
            self.r.schema().primary_key(),
            self.s.schema().primary_key(),
            pk_r.clone(),
            pk_s.clone(),
            m_pairs,
        );
        let negative = match neg {
            NegIndexes::Streamed(n_set) => PairTable::from_compact_set(
                self.r.schema().primary_key(),
                self.s.schema().primary_key(),
                pk_r,
                pk_s,
                n_set,
            ),
            NegIndexes::Buffered(n_pairs, _) => PairTable::from_compact(
                self.r.schema().primary_key(),
                self.s.schema().primary_key(),
                pk_r,
                pk_s,
                n_pairs,
            ),
        };
        drop(convert_stage);
        convert_span.finish();

        let total = self.r.len() * self.s.len();
        // Pairs recorded in both tables (inconsistent knowledge,
        // caught by verify()) must not be subtracted twice.
        let undetermined = (total + overlap)
            .saturating_sub(matching.len())
            .saturating_sub(negative.len());
        recorder.add(counter::CLASSIFY_MT, matching.len() as u64);
        recorder.add(counter::CLASSIFY_NMT, negative.len() as u64);
        recorder.add(counter::CLASSIFY_OVERLAP, overlap as u64);
        recorder.add(counter::CLASSIFY_UNDETERMINED, undetermined as u64);
        recorder.add(counter::CLASSIFY_PAIRS_TOTAL, total as u64);
        // Measured allocation totals only exist when the caller
        // installed the counting allocator (the `count-alloc`
        // feature); absent counters mean "estimated", not "zero".
        if alloc::active() {
            let delta = alloc::snapshot().since(&alloc_start);
            recorder.add(counter::ALLOC_MEASURED_BYTES, delta.allocated);
            recorder.add(counter::ALLOC_MEASURED_FREED, delta.freed);
            recorder.add(counter::ALLOC_PEAK_BYTES, delta.peak);
            recorder.add(
                counter::ALLOC_STAGE_DERIVE,
                delta.stages[alloc_slot::DERIVE],
            );
            recorder.add(
                counter::ALLOC_STAGE_ENGINE,
                delta.stages[alloc_slot::ENGINE],
            );
            recorder.add(
                counter::ALLOC_STAGE_CONVERT,
                delta.stages[alloc_slot::CONVERT],
            );
        }
        run_span.finish();
        let mut stats = recorder.report();
        stats.set_counter(
            counter::PLAN_DRIFT_NODES,
            crate::explain::drift_nodes(&plan, &stats),
        );
        Ok(MatchOutcome {
            matching,
            negative,
            extended_r: ext_r,
            extended_s: ext_s,
            undetermined,
            trace,
            stats,
        })
    }

    /// The [`MatchPlan`] this matcher's runs execute, planning (and
    /// caching) it if no run has happened yet. Pure planning — the
    /// relations are extended and encoded to read column statistics,
    /// but nothing executes. This is what `eid plan` prints.
    pub fn plan(&self) -> Result<Arc<MatchPlan>> {
        let (ext_r, ext_s) = match &self.dataset {
            Some(ds) => (ds.ext_r()?.clone(), ds.ext_s()?.clone()),
            None => (
                extend_relation(
                    &self.r,
                    &self.config.extended_key,
                    &self.config.ilfds,
                    self.config.strategy,
                )?,
                extend_relation(
                    &self.s,
                    &self.config.extended_key,
                    &self.config.ilfds,
                    self.config.strategy,
                )?,
            ),
        };
        let rb = self.rule_base()?;
        let mut executor = self.build_executor(&ext_r, &ext_s, &rb, Recorder::new())?;
        executor.set_kernels(self.config.kernels);
        executor.set_emit(self.config.emit);
        executor.set_spill(
            self.config.budget.max_pair_bytes,
            self.config.spill,
            self.config
                .spill_dir
                .as_ref()
                .map(|p| p.display().to_string()),
            self.config.keep_spill,
        );
        Ok(self.cached_plan(&executor))
    }

    /// Plan-cache accounting: `(hits, misses)` across all runs of
    /// this matcher (and its clones, which share the cache).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (
            self.plan_cache.hits.load(Ordering::Relaxed),
            self.plan_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Builds the executor for one run. The in-memory path interns
    /// and encodes the freshly-extended relations; the dataset path
    /// adopts the store's interner, symbol columns, and column
    /// statistics (tagged [`StatsSource::Persisted`] when the dataset
    /// was opened from disk), so no value is re-interned and no stat
    /// recomputed.
    fn build_executor(
        &self,
        ext_r: &Extended,
        ext_s: &Extended,
        rb: &RuleBase,
        recorder: Recorder,
    ) -> Result<Executor> {
        Ok(match &self.dataset {
            Some(ds) => {
                let mut executor = Executor::from_encoded(
                    &ext_r.relation,
                    &ext_s.relation,
                    rb,
                    ds.interner()?,
                    ds.cols_r(),
                    ds.cols_s(),
                    self.config.threads,
                    recorder,
                );
                executor.set_stats_override(
                    ds.stats_r().to_vec(),
                    ds.stats_s().to_vec(),
                    if ds.persisted() {
                        StatsSource::Persisted
                    } else {
                        StatsSource::Computed
                    },
                );
                executor
            }
            None => Executor::with_recorder(
                &ext_r.relation,
                &ext_s.relation,
                rb,
                self.config.threads,
                recorder,
            ),
        })
    }

    /// The planner hint [`MatchConfig::join`] pins.
    fn arm_hint(&self) -> ArmHint {
        match self.config.join {
            JoinAlgorithm::Blocked => ArmHint::Auto,
            JoinAlgorithm::Hash => ArmHint::Hash,
            JoinAlgorithm::NestedLoop => ArmHint::NestedLoop,
        }
    }

    /// Returns the cached plan, planning through `executor` on first
    /// use. The plan is a pure function of the matcher's (immutable)
    /// relations and config, so reuse is sound.
    fn cached_plan(&self, executor: &Executor) -> Arc<MatchPlan> {
        let mut slot = match self.plan_cache.slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(plan) = slot.as_ref() {
            self.plan_cache.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        let plan = Arc::new(executor.plan(true, self.config.collect_negative, self.arm_hint()));
        self.plan_cache.misses.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&plan));
        plan
    }
}

/// Stamps the planner's decisions into the run report as labels:
/// the execution mode (with its rationale) and, per probed identity
/// rule, the chosen blocking key's explanation.
fn record_plan_labels(recorder: &Recorder, plan: &MatchPlan) {
    let mode = match plan.mode {
        ExecMode::Serial { .. } => "serial".to_string(),
        ExecMode::Parallel { workers } => format!("parallel({workers})"),
    };
    recorder.set_label(
        label::PLAN_MODE,
        &format!("{mode}: {why}", why = plan.mode_why),
    );
    recorder.set_label(
        label::PLAN_EMIT,
        &format!("{}: {}", plan.emit.display(), plan.emit_why),
    );
    recorder.set_label(label::PLAN_STATS, plan.stats_source.as_str());
    for node in &plan.nodes {
        if let PlanNodeKind::IdentityProbe {
            rule,
            strategy: ProbeStrategy::Probe { .. },
        } = &node.kind
        {
            recorder.set_label(&plan_key_label(&rule.name), &node.why);
        }
    }
}

/// Wrap a tripped [`AbortReason`] into the typed [`CoreError::Aborted`]
/// carrying the guard's partial-progress snapshot.
fn abort_of(guard: &RunGuard, reason: AbortReason) -> CoreError {
    CoreError::Aborted {
        reason,
        partial: guard.partial_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::Ilfd;
    use eid_relational::{Schema, Tuple};

    /// Paper Example 2 (Tables 2–3): R(name,cuisine,street),
    /// S(name,speciality,city), K_Ext = {name, cuisine}, one ILFD.
    fn example2() -> (Relation, Relation, MatchConfig) {
        let r_schema =
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["twincities", "chinese", "wash_ave"])
            .unwrap();
        r.insert_strs(&["twincities", "indian", "univ_ave"])
            .unwrap();

        let s_schema =
            Schema::of_strs("S", &["name", "speciality", "city"], &["name", "city"]).unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["twincities", "mughalai", "st_paul"])
            .unwrap();

        let ilfds: IlfdSet = vec![Ilfd::of_strs(
            &[("speciality", "mughalai")],
            &[("cuisine", "indian")],
        )]
        .into_iter()
        .collect();
        let config = MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds);
        (r, s, config)
    }

    #[test]
    fn example2_matches_indian_twincities() {
        let (r, s, config) = example2();
        let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        // Table 3: exactly one match — (TwinCities, Indian) ↔ TwinCities.
        assert_eq!(outcome.matching.len(), 1);
        let e = &outcome.matching.entries()[0];
        assert_eq!(e.r_key, Tuple::of_strs(&["twincities", "indian"]));
        assert_eq!(e.s_key, Tuple::of_strs(&["twincities", "st_paul"]));
        outcome.verify().unwrap();
    }

    #[test]
    fn example2_negative_table_4() {
        let (r, s, config) = example2();
        let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        // Table 4: (TwinCities, Chinese) provably differs from the S
        // tuple (speciality mughalai ⇒ cuisine indian ≠ chinese).
        assert_eq!(outcome.negative.len(), 1);
        let e = &outcome.negative.entries()[0];
        assert_eq!(e.r_key, Tuple::of_strs(&["twincities", "chinese"]));
        // 2×1 pairs: 1 matching + 1 negative = complete.
        assert!(outcome.is_complete());
    }

    #[test]
    fn all_algorithms_agree() {
        let (r, s, config) = example2();
        let mut nl_config = config.clone();
        nl_config.join = JoinAlgorithm::NestedLoop;
        let oracle = EntityMatcher::new(r.clone(), s.clone(), nl_config)
            .unwrap()
            .run()
            .unwrap();
        for join in [JoinAlgorithm::Blocked, JoinAlgorithm::Hash] {
            let mut c = config.clone();
            c.join = join;
            let got = EntityMatcher::new(r.clone(), s.clone(), c)
                .unwrap()
                .run()
                .unwrap();
            assert!(got.matching.includes(&oracle.matching), "{join:?} matching");
            assert!(oracle.matching.includes(&got.matching), "{join:?} matching");
            assert!(got.negative.includes(&oracle.negative), "{join:?} negative");
            assert!(oracle.negative.includes(&got.negative), "{join:?} negative");
            assert_eq!(
                got.undetermined, oracle.undetermined,
                "{join:?} undetermined"
            );
        }
    }

    #[test]
    fn blocked_is_deterministic_across_thread_counts() {
        let (r, s, config) = example2();
        let run_with = |threads: usize| {
            let mut c = config.clone();
            c.threads = threads;
            EntityMatcher::new(r.clone(), s.clone(), c)
                .unwrap()
                .run()
                .unwrap()
        };
        let serial = run_with(1);
        for threads in [0, 2, 8] {
            let parallel = run_with(threads);
            assert_eq!(
                serial.matching.entries(),
                parallel.matching.entries(),
                "threads={threads}"
            );
            assert_eq!(
                serial.negative.entries(),
                parallel.negative.entries(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn blocked_handles_extra_identity_rules() {
        use eid_rules::{IdentityRule, Predicate};
        let (r, s, mut config) = example2();
        // A (deliberately unsound) extra rule: same name ⇒ same
        // entity. It has no indexable shape restriction problems —
        // a pure cross-equality join — and matches both R tuples.
        config.extra_rules.add_identity(
            IdentityRule::new("same-name", vec![Predicate::cross_eq("name")]).unwrap(),
        );
        let blocked = EntityMatcher::new(r.clone(), s.clone(), config.clone())
            .unwrap()
            .run()
            .unwrap();
        config.join = JoinAlgorithm::NestedLoop;
        let oracle = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        assert_eq!(blocked.matching.len(), 2);
        assert!(blocked.matching.includes(&oracle.matching));
        assert!(oracle.matching.includes(&blocked.matching));
        assert!(blocked.negative.includes(&oracle.negative));
        assert!(oracle.negative.includes(&blocked.negative));
    }

    #[test]
    fn empty_extended_key_rejected() {
        let (r, s, mut config) = example2();
        config.extended_key = ExtendedKey::new([]);
        assert!(matches!(
            EntityMatcher::new(r, s, config),
            Err(CoreError::EmptyExtendedKey)
        ));
    }

    #[test]
    fn without_ilfds_everything_is_undetermined() {
        let (r, s, mut config) = example2();
        config.ilfds = IlfdSet::new();
        let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        // S has no cuisine and no ILFD can derive it: no pair can
        // satisfy extended-key equivalence, none can be refuted.
        assert_eq!(outcome.matching.len(), 0);
        assert_eq!(outcome.negative.len(), 0);
        assert_eq!(outcome.undetermined, 2);
    }

    #[test]
    fn unsound_extended_key_detected_by_verify() {
        // K_Ext = {name} is not a key of the integrated world here:
        // both R tuples share name=twincities, so the single S tuple
        // matches both — the prototype's warning scenario.
        let (r, s, mut config) = example2();
        config.extended_key = ExtendedKey::of_strs(&["name"]);
        let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        assert_eq!(outcome.matching.len(), 2);
        assert!(matches!(
            outcome.verify(),
            Err(CoreError::UniquenessViolation { side: "S", .. })
        ));
    }

    #[test]
    fn collect_negative_off_skips_refutation() {
        let (r, s, mut config) = example2();
        config.collect_negative = false;
        let outcome = EntityMatcher::new(r, s, config).unwrap().run().unwrap();
        assert_eq!(outcome.matching.len(), 1);
        assert!(outcome.negative.is_empty());
        assert_eq!(outcome.undetermined, 1);
    }

    #[test]
    fn rule_base_composition() {
        let (r, s, config) = example2();
        let m = EntityMatcher::new(r, s, config).unwrap();
        let rb = m.rule_base().unwrap();
        assert_eq!(rb.identity_rules().len(), 1);
        assert_eq!(rb.distinctness_rules().len(), 1); // one ILFD
    }
}
