//! Attribute-value conflict detection and resolution (§2, instance
//! level problem 2).
//!
//! "Attribute value conflict arises when the attribute values in the
//! two databases, modeling the same property of a real-world entity,
//! do not match. … It is clear that attribute value conflict
//! resolution can be performed only after the entity-identification
//! problem has been resolved." This module runs after the matcher:
//! given the matching table, it detects disagreements on semantically
//! equivalent attributes of matched pairs and builds a *unified*
//! relation (one row per integrated entity, one column per attribute
//! name) under a [`ConflictPolicy`].

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use eid_relational::{AttrName, Attribute, Relation, Schema, Tuple, Value, ValueType};

use crate::error::Result;
use crate::matcher::MatchOutcome;

/// How to resolve a conflicting attribute value of a matched pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Keep the `R` value (database 1 is authoritative).
    PreferR,
    /// Keep the `S` value.
    PreferS,
    /// Store NULL — the integrated database admits it does not know.
    #[default]
    Null,
}

/// A detected disagreement between matched tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeConflict {
    /// Primary key of the `R` tuple.
    pub r_key: Tuple,
    /// Primary key of the `S` tuple.
    pub s_key: Tuple,
    /// The attribute in question.
    pub attr: AttrName,
    /// `R`'s value.
    pub r_value: Value,
    /// `S`'s value.
    pub s_value: Value,
}

impl fmt::Display for AttributeConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: R{} says {}, S{} says {}",
            self.attr, self.r_key, self.r_value, self.s_key, self.s_value
        )
    }
}

/// The unified (actually integrated) relation plus the conflicts
/// that were resolved to build it.
#[derive(Debug, Clone)]
pub struct Unified {
    /// One row per integrated entity; columns are the union of both
    /// extended schemas' attribute names.
    pub relation: Relation,
    /// Every conflict encountered, regardless of policy.
    pub conflicts: Vec<AttributeConflict>,
}

/// Detects conflicts on all shared attributes of matched pairs.
/// NULL on either side is *missing data*, not a conflict.
pub fn detect_conflicts(
    r: &Relation,
    s: &Relation,
    outcome: &MatchOutcome,
) -> Result<Vec<AttributeConflict>> {
    let ext_r = &outcome.extended_r.relation;
    let ext_s = &outcome.extended_s.relation;
    let shared: Vec<AttrName> = ext_r
        .schema()
        .attribute_names()
        .filter(|a| ext_s.schema().has_attribute(a))
        .cloned()
        .collect();
    let r_by_key = index_by_key(r);
    let s_by_key = index_by_key(s);

    let mut out = Vec::new();
    for entry in outcome.matching.entries() {
        let (Some(&i), Some(&j)) = (r_by_key.get(&entry.r_key), s_by_key.get(&entry.s_key)) else {
            continue;
        };
        let tr = &ext_r.tuples()[i];
        let ts = &ext_s.tuples()[j];
        for attr in &shared {
            let rv = tr
                .value_of(ext_r.schema(), attr)
                .cloned()
                .unwrap_or(Value::Null);
            let sv = ts
                .value_of(ext_s.schema(), attr)
                .cloned()
                .unwrap_or(Value::Null);
            if !rv.is_null() && !sv.is_null() && !rv.non_null_eq(&sv) {
                out.push(AttributeConflict {
                    r_key: entry.r_key.clone(),
                    s_key: entry.s_key.clone(),
                    attr: attr.clone(),
                    r_value: rv,
                    s_value: sv,
                });
            }
        }
    }
    Ok(out)
}

fn index_by_key(rel: &Relation) -> HashMap<Tuple, usize> {
    rel.iter()
        .enumerate()
        .map(|(i, t)| (rel.primary_key_of(t), i))
        .collect()
}

/// Builds the unified relation: matched pairs merge into one row (the
/// given `policy` resolves conflicts; agreeing or one-sided values
/// coalesce), unmatched tuples keep their own values with NULLs for
/// the other side's private attributes.
pub fn unify(
    r: &Relation,
    s: &Relation,
    outcome: &MatchOutcome,
    policy: ConflictPolicy,
) -> Result<Unified> {
    let ext_r = &outcome.extended_r.relation;
    let ext_s = &outcome.extended_s.relation;

    // Unified column set: R′'s attributes, then S′'s extras.
    let mut attrs: Vec<AttrName> = ext_r.schema().attribute_names().cloned().collect();
    for a in ext_s.schema().attribute_names() {
        if !attrs.contains(a) {
            attrs.push(a.clone());
        }
    }
    let schema: Arc<Schema> = Schema::new(
        "Unified",
        attrs
            .iter()
            .map(|a| Attribute::new(a.clone(), ValueType::Str))
            .collect(),
        vec![],
    )?;

    let conflicts = detect_conflicts(r, s, outcome)?;
    let conflict_set: std::collections::HashSet<(Tuple, AttrName)> = conflicts
        .iter()
        .map(|c| (c.r_key.clone(), c.attr.clone()))
        .collect();

    let r_by_key = index_by_key(r);
    let s_by_key = index_by_key(s);
    let mut rel = Relation::new_unchecked(schema);
    let mut r_matched = vec![false; r.len()];
    let mut s_matched = vec![false; s.len()];

    for entry in outcome.matching.entries() {
        let (Some(&i), Some(&j)) = (r_by_key.get(&entry.r_key), s_by_key.get(&entry.s_key)) else {
            continue;
        };
        r_matched[i] = true;
        s_matched[j] = true;
        let tr = &ext_r.tuples()[i];
        let ts = &ext_s.tuples()[j];
        let values: Vec<Value> = attrs
            .iter()
            .map(|a| {
                let rv = tr
                    .value_of(ext_r.schema(), a)
                    .cloned()
                    .unwrap_or(Value::Null);
                let sv = ts
                    .value_of(ext_s.schema(), a)
                    .cloned()
                    .unwrap_or(Value::Null);
                if conflict_set.contains(&(entry.r_key.clone(), a.clone())) {
                    match policy {
                        ConflictPolicy::PreferR => rv,
                        ConflictPolicy::PreferS => sv,
                        ConflictPolicy::Null => Value::Null,
                    }
                } else if rv.is_null() {
                    sv
                } else {
                    rv
                }
            })
            .collect();
        rel.insert(Tuple::new(values))?;
    }
    for (i, done) in r_matched.iter().enumerate() {
        if *done {
            continue;
        }
        let tr = &ext_r.tuples()[i];
        let values: Vec<Value> = attrs
            .iter()
            .map(|a| {
                tr.value_of(ext_r.schema(), a)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        rel.insert(Tuple::new(values))?;
    }
    for (j, done) in s_matched.iter().enumerate() {
        if *done {
            continue;
        }
        let ts = &ext_s.tuples()[j];
        let values: Vec<Value> = attrs
            .iter()
            .map(|a| {
                ts.value_of(ext_s.schema(), a)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        rel.insert(Tuple::new(values))?;
    }

    Ok(Unified {
        relation: rel,
        conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{EntityMatcher, MatchConfig};
    use eid_ilfd::{Ilfd, IlfdSet};
    use eid_relational::Schema;
    use eid_rules::ExtendedKey;

    /// R and S agree on (name, cuisine) but disagree on `phone`.
    fn conflicted_workload() -> (Relation, Relation, MatchOutcome) {
        let r_schema = Schema::of_strs(
            "R",
            &["name", "cuisine", "phone", "street"],
            &["name", "cuisine"],
        )
        .unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["tc", "chinese", "111", "co_b2"]).unwrap();
        r.insert_strs(&["vw", "chinese", "333", "wash"]).unwrap();

        let s_schema = Schema::of_strs(
            "S",
            &["name", "speciality", "phone", "county"],
            &["name", "speciality"],
        )
        .unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["tc", "hunan", "222", "roseville"]).unwrap();
        s.insert_strs(&["xx", "gyros", "444", "ramsey"]).unwrap();

        let ilfds: IlfdSet = vec![
            Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
            Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
        ]
        .into_iter()
        .collect();
        let outcome = EntityMatcher::new(
            r.clone(),
            s.clone(),
            MatchConfig::new(ExtendedKey::of_strs(&["name", "cuisine"]), ilfds),
        )
        .unwrap()
        .run()
        .unwrap();
        (r, s, outcome)
    }

    #[test]
    fn detects_phone_conflict_only_on_matched_pairs() {
        let (r, s, outcome) = conflicted_workload();
        assert_eq!(outcome.matching.len(), 1);
        let conflicts = detect_conflicts(&r, &s, &outcome).unwrap();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].attr, AttrName::new("phone"));
        assert_eq!(conflicts[0].r_value, Value::str("111"));
        assert_eq!(conflicts[0].s_value, Value::str("222"));
        assert!(conflicts[0].to_string().contains("phone"));
    }

    #[test]
    fn unify_policies() {
        let (r, s, outcome) = conflicted_workload();
        let phone = AttrName::new("phone");

        let u = unify(&r, &s, &outcome, ConflictPolicy::PreferR).unwrap();
        let merged = u
            .relation
            .iter()
            .find(|t| t.get(0) == &Value::str("tc"))
            .unwrap();
        assert_eq!(
            merged.value_of(u.relation.schema(), &phone),
            Some(&Value::str("111"))
        );

        let u = unify(&r, &s, &outcome, ConflictPolicy::PreferS).unwrap();
        let merged = u
            .relation
            .iter()
            .find(|t| t.get(0) == &Value::str("tc"))
            .unwrap();
        assert_eq!(
            merged.value_of(u.relation.schema(), &phone),
            Some(&Value::str("222"))
        );

        let u = unify(&r, &s, &outcome, ConflictPolicy::Null).unwrap();
        let merged = u
            .relation
            .iter()
            .find(|t| t.get(0) == &Value::str("tc"))
            .unwrap();
        assert!(merged
            .value_of(u.relation.schema(), &phone)
            .unwrap()
            .is_null());
        assert_eq!(u.conflicts.len(), 1);
    }

    #[test]
    fn unify_row_count_and_coalescing() {
        let (r, s, outcome) = conflicted_workload();
        let u = unify(&r, &s, &outcome, ConflictPolicy::PreferR).unwrap();
        // 1 merged + 1 R-only + 1 S-only = 3 rows.
        assert_eq!(u.relation.len(), 3);
        // The merged row coalesced speciality (S-only value) in.
        let spec = AttrName::new("speciality");
        let merged = u
            .relation
            .iter()
            .find(|t| t.get(0) == &Value::str("tc"))
            .unwrap();
        assert_eq!(
            merged.value_of(u.relation.schema(), &spec),
            Some(&Value::str("hunan"))
        );
        // The S-only row carries its derived cuisine.
        let sonly = u
            .relation
            .iter()
            .find(|t| t.get(0) == &Value::str("xx"))
            .unwrap();
        assert_eq!(
            sonly.value_of(u.relation.schema(), &AttrName::new("cuisine")),
            Some(&Value::str("greek"))
        );
        // …and NULL for R-private street.
        assert!(sonly
            .value_of(u.relation.schema(), &AttrName::new("street"))
            .unwrap()
            .is_null());
    }

    #[test]
    fn agreeing_values_are_not_conflicts() {
        let r_schema = Schema::of_strs("R", &["name", "city"], &["name"]).unwrap();
        let mut r = Relation::new(r_schema);
        r.insert_strs(&["a", "mpls"]).unwrap();
        let s_schema = Schema::of_strs("S", &["name", "city"], &["name"]).unwrap();
        let mut s = Relation::new(s_schema);
        s.insert_strs(&["a", "mpls"]).unwrap();
        let outcome = EntityMatcher::new(
            r.clone(),
            s.clone(),
            MatchConfig::new(ExtendedKey::of_strs(&["name", "city"]), IlfdSet::new()),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(outcome.matching.len(), 1);
        assert!(detect_conflicts(&r, &s, &outcome).unwrap().is_empty());
    }
}
