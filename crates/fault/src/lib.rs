//! # `eid-fault` — deterministic fault injection
//!
//! A tiny, dependency-free harness that lets tests drive every
//! failure path of the matching runtime reproducibly: worker panics
//! at task *k*, CSV read errors at row *l*, interner poisoning,
//! transient spill I/O failures (`sink/spill_open`,
//! `sink/spill_write`, `sink/spill_read` — each armed clause fails
//! one attempt; the sinks retry with backoff, so forcing retry
//! exhaustion takes more clauses than retries), forced memory-budget
//! trips (`runtime/budget`), and so on. Production code sprinkles
//! named *sites*
//! ([`hit`]/[`maybe_panic`] calls); tests arm a *plan* (via
//! [`install`] or the `EID_FAULT`/`EID_FAULT_SEED` environment
//! variables) that says which site fires at which call count.
//!
//! **Compile-time-off in release**: [`ENABLED`] is `false` unless the
//! crate is built with `debug_assertions` (the test profile) or the
//! `force-on` feature. Every entry point checks `ENABLED` first, so
//! the release-mode hot path folds to nothing — the benchmarks pay
//! zero overhead for the instrumentation.
//!
//! ## Plan syntax
//!
//! A plan is a `;`-separated list of `site@trigger` clauses:
//!
//! ```text
//! engine/worker@3              # fire on the 3rd call at that site
//! engine/worker@s8             # seed-driven: k = splitmix64(seed) % 8 + 1
//! engine/worker@2;csv/read@5   # several independent triggers
//! ```
//!
//! Each clause fires exactly **once** (at its trigger count); call
//! counts keep advancing across retries, so a plan with two clauses
//! for one site can hit both a first attempt and its degraded rerun.
//! Determinism: with a fixed plan and seed, the k-th call at a site
//! is the same call in every run.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Whether fault injection is compiled in at all. `false` in plain
/// release builds — every public function is a no-op there.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "force-on"));

/// One armed trigger: fire the `trigger`-th call at `site`.
#[derive(Debug, Clone)]
struct Clause {
    site: String,
    trigger: u64,
    fired: bool,
}

#[derive(Debug, Default)]
struct Plan {
    clauses: Vec<Clause>,
    /// Calls seen per site since the plan was installed.
    counts: HashMap<String, u64>,
}

fn state() -> &'static Mutex<Option<Plan>> {
    static STATE: OnceLock<Mutex<Option<Plan>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(if ENABLED { plan_from_env() } else { None }))
}

/// Reads `EID_FAULT` (+ optional `EID_FAULT_SEED`) once at first use.
fn plan_from_env() -> Option<Plan> {
    let spec = std::env::var("EID_FAULT").ok()?;
    let seed = std::env::var("EID_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    parse_plan(&spec, seed).ok()
}

/// SplitMix64 — the standard seed scrambler; good enough to spread
/// small seeds over trigger space deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn parse_plan(spec: &str, seed: u64) -> Result<Plan, String> {
    let mut plan = Plan::default();
    for (n, clause) in spec.split(';').enumerate() {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, trig) = clause
            .split_once('@')
            .ok_or_else(|| format!("fault clause `{clause}` is missing `@trigger`"))?;
        let trigger = if let Some(m) = trig.strip_prefix('s') {
            let modulus: u64 = m
                .parse()
                .map_err(|_| format!("bad seed modulus in `{clause}`"))?;
            if modulus == 0 {
                return Err(format!("seed modulus must be nonzero in `{clause}`"));
            }
            // Mix the clause index in so two seed-driven clauses for
            // one site land on different triggers.
            splitmix64(seed.wrapping_add(n as u64)) % modulus + 1
        } else {
            let k: u64 = trig
                .parse()
                .map_err(|_| format!("bad trigger count in `{clause}`"))?;
            if k == 0 {
                return Err(format!("trigger count must be nonzero in `{clause}`"));
            }
            k
        };
        plan.clauses.push(Clause {
            site: site.trim().to_string(),
            trigger,
            fired: false,
        });
    }
    Ok(plan)
}

/// Installs a fault plan for this process, replacing any previous
/// plan (and any plan read from the environment). Call counts start
/// from zero. No-op (always `Ok`) when [`ENABLED`] is `false`.
pub fn install(spec: &str, seed: u64) -> Result<(), String> {
    if !ENABLED {
        return Ok(());
    }
    let plan = parse_plan(spec, seed)?;
    *state().lock().expect("fault state poisoned") = Some(plan);
    Ok(())
}

/// Disarms all faults and resets call counts.
pub fn clear() {
    if !ENABLED {
        return;
    }
    *state().lock().expect("fault state poisoned") = None;
}

/// Whether any fault plan is currently armed.
pub fn armed() -> bool {
    if !ENABLED {
        return false;
    }
    state()
        .lock()
        .expect("fault state poisoned")
        .as_ref()
        .is_some_and(|p| p.clauses.iter().any(|c| !c.fired))
}

/// Registers one call at `site`; returns `true` when an armed clause
/// fires on this call. Always `false` when [`ENABLED`] is off (the
/// call folds away in release builds).
pub fn hit(site: &str) -> bool {
    if !ENABLED {
        return false;
    }
    let mut guard = state().lock().expect("fault state poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let count = plan.counts.entry(site.to_string()).or_insert(0);
    *count += 1;
    let now = *count;
    let mut fire = false;
    for c in &mut plan.clauses {
        if !c.fired && c.site == site && c.trigger == now {
            c.fired = true;
            fire = true;
        }
    }
    fire
}

/// Panics with a recognizable payload when an armed clause fires at
/// `site`. The payload starts with `eid-fault:` so panic isolation
/// layers (and [`quiet_panics`]) can tell injected panics apart.
pub fn maybe_panic(site: &str) {
    if ENABLED && hit(site) {
        panic!("eid-fault: injected panic at {site}");
    }
}

/// Installs a process-wide panic hook that suppresses the default
/// stderr backtrace for *injected* panics only (payloads starting
/// with `eid-fault:`). Real panics keep the default report. Tests
/// that arm panic faults call this once to keep their output clean.
pub fn quiet_panics() {
    if !ENABLED {
        return;
    }
    static HOOKED: OnceLock<()> = OnceLock::new();
    HOOKED.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("eid-fault:"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("eid-fault:"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global plan is process state; tests serialize on it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn fires_exactly_once_at_the_trigger_count() {
        let _l = lock();
        install("a/b@3", 0).unwrap();
        assert!(!hit("a/b"));
        assert!(!hit("a/b"));
        assert!(hit("a/b"));
        assert!(!hit("a/b"));
        assert!(!armed());
        clear();
    }

    #[test]
    fn sites_are_independent() {
        let _l = lock();
        install("x@1;y@2", 0).unwrap();
        assert!(!hit("y"));
        assert!(hit("x"));
        assert!(hit("y"));
        clear();
    }

    #[test]
    fn seed_driven_triggers_are_deterministic_and_in_range() {
        let _l = lock();
        for seed in [0u64, 1, 42, u64::MAX] {
            let p1 = parse_plan("s@s8", seed).unwrap();
            let p2 = parse_plan("s@s8", seed).unwrap();
            assert_eq!(p1.clauses[0].trigger, p2.clauses[0].trigger);
            assert!((1..=8).contains(&p1.clauses[0].trigger));
        }
        // Two seed clauses for one site get distinct mixing.
        let p = parse_plan("s@s1000000007;s@s1000000007", 7).unwrap();
        assert_ne!(p.clauses[0].trigger, p.clauses[1].trigger);
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _l = lock();
        assert!(parse_plan("no-trigger", 0).is_err());
        assert!(parse_plan("x@0", 0).is_err());
        assert!(parse_plan("x@s0", 0).is_err());
        assert!(parse_plan("x@nope", 0).is_err());
        assert!(parse_plan("", 0).unwrap().clauses.is_empty());
        clear();
    }

    #[test]
    fn maybe_panic_panics_with_recognizable_payload() {
        let _l = lock();
        quiet_panics();
        install("boom@1", 0).unwrap();
        let err = std::panic::catch_unwind(|| maybe_panic("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with("eid-fault:"), "{msg}");
        clear();
    }

    #[test]
    fn clear_disarms() {
        let _l = lock();
        install("z@1", 0).unwrap();
        clear();
        assert!(!hit("z"));
        assert!(!armed());
    }
}
