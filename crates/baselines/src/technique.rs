//! A common interface for entity-identification techniques.
//!
//! §2.2 surveys five existing approaches; each is implemented in this
//! crate behind the [`Technique`] trait so the comparison experiments
//! (S3) can run them side by side against the paper's ILFD technique
//! and measure soundness/completeness with [`eid_core::metrics`].

use eid_core::match_table::PairTable;
use eid_core::metrics::{Evaluation, GroundTruth};
use eid_relational::{Relation, Schema, Tuple};
use eid_rules::MatchDecision;

/// An entity-identification technique: a three-valued function on
/// tuple pairs (§3.2).
pub trait Technique {
    /// Human-readable technique name.
    fn name(&self) -> &str;

    /// Decides one pair. `t1` comes from relation `R` (schema `s1`),
    /// `t2` from `S` (schema `s2`).
    fn decide(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> MatchDecision;
}

/// The tables a technique produced over a full relation pair.
#[derive(Debug, Clone)]
pub struct TechniqueOutcome {
    /// Declared matches.
    pub matching: PairTable,
    /// Declared non-matches.
    pub negative: PairTable,
    /// Pairs left undetermined.
    pub undetermined: usize,
}

/// Runs `technique` over every pair of `r` × `s`.
pub fn run_technique(technique: &dyn Technique, r: &Relation, s: &Relation) -> TechniqueOutcome {
    let mut matching = PairTable::new(r.schema().primary_key(), s.schema().primary_key());
    let mut negative = PairTable::new(r.schema().primary_key(), s.schema().primary_key());
    let mut undetermined = 0;
    for tr in r.iter() {
        for ts in s.iter() {
            match technique.decide(r.schema(), tr, s.schema(), ts) {
                MatchDecision::Matching => {
                    matching.insert(r.primary_key_of(tr), s.primary_key_of(ts));
                }
                MatchDecision::NotMatching => {
                    negative.insert(r.primary_key_of(tr), s.primary_key_of(ts));
                }
                MatchDecision::Undetermined => undetermined += 1,
            }
        }
    }
    TechniqueOutcome {
        matching,
        negative,
        undetermined,
    }
}

/// Runs and scores a technique against ground truth.
pub fn evaluate_technique(
    technique: &dyn Technique,
    r: &Relation,
    s: &Relation,
    truth: &GroundTruth,
) -> Evaluation {
    let outcome = run_technique(technique, r, s);
    Evaluation::compute(
        truth,
        &outcome.matching,
        &outcome.negative,
        r.len() * s.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    /// A trivial technique: everything matches.
    struct AlwaysMatch;
    impl Technique for AlwaysMatch {
        fn name(&self) -> &str {
            "always-match"
        }
        fn decide(&self, _: &Schema, _: &Tuple, _: &Schema, _: &Tuple) -> MatchDecision {
            MatchDecision::Matching
        }
    }

    #[test]
    fn run_technique_partitions_all_pairs() {
        let schema = Schema::of_strs("R", &["k"], &["k"]).unwrap();
        let mut r = Relation::new(schema.clone());
        r.insert_strs(&["a"]).unwrap();
        r.insert_strs(&["b"]).unwrap();
        let mut s = Relation::new(schema.renamed("S"));
        s.insert_strs(&["a"]).unwrap();
        let out = run_technique(&AlwaysMatch, &r, &s);
        assert_eq!(out.matching.len(), 2);
        assert_eq!(out.negative.len(), 0);
        assert_eq!(out.undetermined, 0);
    }

    #[test]
    fn evaluate_detects_false_matches() {
        let schema = Schema::of_strs("R", &["k"], &["k"]).unwrap();
        let mut r = Relation::new(schema.clone());
        r.insert_strs(&["a"]).unwrap();
        r.insert_strs(&["b"]).unwrap();
        let mut s = Relation::new(schema.renamed("S"));
        s.insert_strs(&["a"]).unwrap();
        let mut truth = GroundTruth::new();
        truth.add(Tuple::of_strs(&["a"]), Tuple::of_strs(&["a"]));
        let e = evaluate_technique(&AlwaysMatch, &r, &s, &truth);
        assert_eq!(e.true_matches, 1);
        assert_eq!(e.false_matches, 1);
        assert!(!e.is_sound());
    }
}
