//! Baseline 1 — key equivalence (§2.2.1).
//!
//! "Many approaches assume some common key exists between relations
//! from different databases modeling the same entity type, e.g.,
//! Multibase. … equivalence of values of the common key can be used
//! to resolve the problem." The often-unstated assumption (§4.1) is
//! that the common key *remains a key in the integrated world*; when
//! it does not (instance-level homonyms), key equivalence declares
//! false matches — which is exactly what the comparison experiments
//! demonstrate.

use eid_relational::{AttrName, Schema, Tuple};
use eid_rules::MatchDecision;

use crate::technique::Technique;

/// Key-equivalence matching over a shared candidate key.
#[derive(Debug, Clone)]
pub struct KeyEquivalence {
    key: Vec<AttrName>,
    /// Whether unequal keys prove distinctness. True models the
    /// classical assumption ("the key is a key of the integrated
    /// world", so different keys ⇒ different entities); false leaves
    /// unequal pairs undetermined.
    assume_integrated_key: bool,
}

impl KeyEquivalence {
    /// Builds the technique over the named common-key attributes.
    pub fn new(key: &[&str], assume_integrated_key: bool) -> Self {
        KeyEquivalence {
            key: key.iter().map(AttrName::new).collect(),
            assume_integrated_key,
        }
    }
}

impl Technique for KeyEquivalence {
    fn name(&self) -> &str {
        "key-equivalence"
    }

    fn decide(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> MatchDecision {
        let mut all_equal = true;
        for attr in &self.key {
            let (Some(a), Some(b)) = (t1.value_of(s1, attr), t2.value_of(s2, attr)) else {
                return MatchDecision::Undetermined; // no common key
            };
            if a.is_null() || b.is_null() {
                return MatchDecision::Undetermined;
            }
            if !a.non_null_eq(b) {
                all_equal = false;
            }
        }
        if all_equal {
            MatchDecision::Matching
        } else if self.assume_integrated_key {
            MatchDecision::NotMatching
        } else {
            MatchDecision::Undetermined
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Value};

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "street"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "city"], &["name"]).unwrap(),
        )
    }

    #[test]
    fn equal_keys_match() {
        let (s1, s2) = schemas();
        let k = KeyEquivalence::new(&["name"], true);
        assert_eq!(
            k.decide(
                &s1,
                &Tuple::of_strs(&["villagewok", "wash_ave"]),
                &s2,
                &Tuple::of_strs(&["villagewok", "mpls"])
            ),
            MatchDecision::Matching
        );
    }

    #[test]
    fn unequal_keys_refute_under_integrated_key_assumption() {
        let (s1, s2) = schemas();
        let strict = KeyEquivalence::new(&["name"], true);
        let lax = KeyEquivalence::new(&["name"], false);
        let a = Tuple::of_strs(&["a", "x"]);
        let b = Tuple::of_strs(&["b", "y"]);
        assert_eq!(strict.decide(&s1, &a, &s2, &b), MatchDecision::NotMatching);
        assert_eq!(lax.decide(&s1, &a, &s2, &b), MatchDecision::Undetermined);
    }

    #[test]
    fn missing_or_null_key_is_undetermined() {
        let (s1, s2) = schemas();
        let k = KeyEquivalence::new(&["street"], true); // S lacks street
        assert_eq!(
            k.decide(
                &s1,
                &Tuple::of_strs(&["a", "x"]),
                &s2,
                &Tuple::of_strs(&["a", "y"])
            ),
            MatchDecision::Undetermined
        );
        let k = KeyEquivalence::new(&["name"], true);
        assert_eq!(
            k.decide(
                &s1,
                &Tuple::new(vec![Value::Null, Value::str("x")]),
                &s2,
                &Tuple::of_strs(&["a", "y"])
            ),
            MatchDecision::Undetermined
        );
    }

    /// Example 1's failure mode: same name, different restaurants.
    #[test]
    fn instance_level_homonym_causes_false_match() {
        let (s1, s2) = schemas();
        let k = KeyEquivalence::new(&["name"], true);
        // Minneapolis VillageWok vs a hypothetical St. Paul VillageWok:
        // key equivalence cannot tell them apart and declares a match.
        let d = k.decide(
            &s1,
            &Tuple::of_strs(&["villagewok", "wash_ave"]),
            &s2,
            &Tuple::of_strs(&["villagewok", "st_paul"]),
        );
        assert_eq!(d, MatchDecision::Matching);
    }
}
