//! Baseline 5 — heuristic rules (Wang & Madnick, §2.2.5).
//!
//! "Wang and Madnick attacked the problem using a knowledge-based
//! approach. A set of heuristic rules is used to infer additional
//! information about the object instances to be matched. Because the
//! knowledge used is heuristic in nature, the matching result
//! produced may not be correct."
//!
//! A heuristic rule looks like an ILFD but carries a confidence in
//! `(0, 1]` and — crucially — *may be wrong*. Inference chains
//! multiply confidences; derived values are used to compare the pair
//! on a target key, and a match is declared when the combined
//! confidence clears the threshold. Soundness is therefore not
//! guaranteed, which the comparison experiments quantify.

use std::collections::HashMap;

use eid_ilfd::Ilfd;
use eid_relational::{AttrName, Schema, Tuple, Value};
use eid_rules::MatchDecision;

use crate::technique::Technique;

/// An ILFD-shaped rule with a confidence.
#[derive(Debug, Clone)]
pub struct HeuristicRule {
    /// The rule body (may be factually wrong).
    pub rule: Ilfd,
    /// Confidence in `(0, 1]`.
    pub confidence: f64,
}

impl HeuristicRule {
    /// Builds a heuristic rule.
    pub fn new(rule: Ilfd, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "confidence must be in (0, 1]"
        );
        HeuristicRule { rule, confidence }
    }
}

/// A value inferred with some confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredValue {
    /// The inferred value.
    pub value: Value,
    /// Combined confidence of the inference chain.
    pub confidence: f64,
}

/// Heuristic matcher: infers attribute values with confidences, then
/// compares the pair on `match_attrs`.
#[derive(Debug, Clone)]
pub struct HeuristicRules {
    rules: Vec<HeuristicRule>,
    match_attrs: Vec<AttrName>,
    /// Combined confidence required to declare a match.
    pub threshold: f64,
}

impl HeuristicRules {
    /// Builds the technique.
    pub fn new(rules: Vec<HeuristicRule>, match_attrs: &[&str], threshold: f64) -> Self {
        HeuristicRules {
            rules,
            match_attrs: match_attrs.iter().map(AttrName::new).collect(),
            threshold,
        }
    }

    /// Infers every attribute derivable for `tuple`, with combined
    /// confidences (fixpoint; first inference per attribute wins,
    /// base facts have confidence 1).
    pub fn infer(&self, schema: &Schema, tuple: &Tuple) -> HashMap<AttrName, InferredValue> {
        let mut known: HashMap<AttrName, InferredValue> = HashMap::new();
        for (attr, value) in schema.attributes().iter().zip(tuple.values()) {
            if !value.is_null() {
                known.insert(
                    attr.name.clone(),
                    InferredValue {
                        value: value.clone(),
                        confidence: 1.0,
                    },
                );
            }
        }
        loop {
            let mut progress = false;
            for hr in &self.rules {
                // All antecedent symbols must be known and agree.
                let mut chain = hr.confidence;
                let mut ok = true;
                for s in hr.rule.antecedent() {
                    match known.get(&s.attr) {
                        Some(iv) if iv.value.non_null_eq(&s.value) => {
                            chain *= iv.confidence;
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                for s in hr.rule.consequent() {
                    if !known.contains_key(&s.attr) {
                        known.insert(
                            s.attr.clone(),
                            InferredValue {
                                value: s.value.clone(),
                                confidence: chain,
                            },
                        );
                        progress = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        known
    }
}

impl Technique for HeuristicRules {
    fn name(&self) -> &str {
        "heuristic-rules"
    }

    fn decide(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> MatchDecision {
        let k1 = self.infer(s1, t1);
        let k2 = self.infer(s2, t2);
        let mut confidence = 1.0f64;
        for attr in &self.match_attrs {
            match (k1.get(attr), k2.get(attr)) {
                (Some(a), Some(b)) => {
                    if !a.value.non_null_eq(&b.value) {
                        // A confident disagreement refutes; a shaky one
                        // leaves the pair undetermined.
                        return if a.confidence * b.confidence >= self.threshold {
                            MatchDecision::NotMatching
                        } else {
                            MatchDecision::Undetermined
                        };
                    }
                    confidence *= a.confidence * b.confidence;
                }
                _ => return MatchDecision::Undetermined,
            }
        }
        if confidence >= self.threshold {
            MatchDecision::Matching
        } else {
            MatchDecision::Undetermined
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "cuisine"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "speciality"], &["name"]).unwrap(),
        )
    }

    fn technique(conf: f64, threshold: f64) -> HeuristicRules {
        HeuristicRules::new(
            vec![HeuristicRule::new(
                Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
                conf,
            )],
            &["name", "cuisine"],
            threshold,
        )
    }

    #[test]
    fn confident_inference_matches() {
        let (s1, s2) = schemas();
        let h = technique(0.95, 0.9);
        let d = h.decide(
            &s1,
            &Tuple::of_strs(&["anjuman", "indian"]),
            &s2,
            &Tuple::of_strs(&["anjuman", "mughalai"]),
        );
        assert_eq!(d, MatchDecision::Matching);
    }

    #[test]
    fn low_confidence_stays_undetermined() {
        let (s1, s2) = schemas();
        let h = technique(0.5, 0.9);
        let d = h.decide(
            &s1,
            &Tuple::of_strs(&["anjuman", "indian"]),
            &s2,
            &Tuple::of_strs(&["anjuman", "mughalai"]),
        );
        assert_eq!(d, MatchDecision::Undetermined);
    }

    #[test]
    fn confident_disagreement_refutes() {
        let (s1, s2) = schemas();
        let h = technique(0.95, 0.9);
        let d = h.decide(
            &s1,
            &Tuple::of_strs(&["anjuman", "greek"]),
            &s2,
            &Tuple::of_strs(&["anjuman", "mughalai"]),
        );
        assert_eq!(d, MatchDecision::NotMatching);
    }

    #[test]
    fn missing_information_is_undetermined() {
        let (s1, s2) = schemas();
        let h = technique(0.95, 0.9);
        let d = h.decide(
            &s1,
            &Tuple::of_strs(&["anjuman", "indian"]),
            &s2,
            &Tuple::of_strs(&["anjuman", "gyros_unknown"]),
        );
        assert_eq!(d, MatchDecision::Undetermined);
    }

    #[test]
    fn chained_inference_multiplies_confidence() {
        let schema = Schema::of_strs("T", &["a", "b", "c"], &["a"]).unwrap();
        let h = HeuristicRules::new(
            vec![
                HeuristicRule::new(Ilfd::of_strs(&[("a", "1")], &[("b", "2")]), 0.9),
                HeuristicRule::new(Ilfd::of_strs(&[("b", "2")], &[("c", "3")]), 0.9),
            ],
            &["c"],
            0.5,
        );
        let known = h.infer(
            &schema,
            &Tuple::new(vec![Value::str("1"), Value::Null, Value::Null]),
        );
        let c = known.get(&AttrName::new("c")).unwrap();
        assert_eq!(c.value, Value::str("3"));
        assert!((c.confidence - 0.81).abs() < 1e-9);
    }

    /// The §2.2 caveat made concrete: a wrong heuristic produces a
    /// false match the technique is confident about.
    #[test]
    fn wrong_heuristic_causes_false_match() {
        let (s1, s2) = schemas();
        // Bogus rule: every mughalai place is greek.
        let h = HeuristicRules::new(
            vec![HeuristicRule::new(
                Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "greek")]),
                0.95,
            )],
            &["name", "cuisine"],
            0.9,
        );
        let d = h.decide(
            &s1,
            &Tuple::of_strs(&["anjuman", "greek"]), // actually a Greek place named anjuman
            &s2,
            &Tuple::of_strs(&["anjuman", "mughalai"]), // the Indian one
        );
        assert_eq!(d, MatchDecision::Matching); // unsound!
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn invalid_confidence_panics() {
        HeuristicRule::new(Ilfd::of_strs(&[("a", "1")], &[("b", "2")]), 1.5);
    }
}
