//! Baseline 4 — probabilistic attribute equivalence
//! (Chatterjee & Segev, §2.2.4).
//!
//! "Chatterjee and Segev proposed the use of all common attributes
//! between two relations to determine entity equivalence. For each
//! pair of records from two relations, a value called *comparison
//! value* is assigned based on a probabilistic model." §2.1
//! demonstrates that comparing common attribute values does not
//! necessarily produce correct matching results — the Figure-2
//! scenario (identical attributes, different entities) defeats it by
//! construction.
//!
//! The comparison value here is a weighted mean of per-attribute
//! agreement indicators over the common attributes (NULLs are
//! excluded from both numerator and weight mass), thresholded into
//! the three-valued decision.

use eid_relational::{AttrName, Schema, Tuple};
use eid_rules::MatchDecision;

use crate::technique::Technique;

/// Weighted comparison-value matching over common attributes.
#[derive(Debug, Clone)]
pub struct ProbabilisticAttr {
    /// Per-attribute weights; attributes not listed get weight 1.0.
    weights: Vec<(AttrName, f64)>,
    /// Comparison values ≥ accept declare `Matching`.
    pub accept: f64,
    /// Comparison values ≤ reject declare `NotMatching`.
    pub reject: f64,
}

impl ProbabilisticAttr {
    /// Builds with uniform weights.
    pub fn uniform(accept: f64, reject: f64) -> Self {
        assert!(reject < accept, "reject threshold must be below accept");
        ProbabilisticAttr {
            weights: Vec::new(),
            accept,
            reject,
        }
    }

    /// Builds with explicit weights for some attributes.
    pub fn weighted(weights: &[(&str, f64)], accept: f64, reject: f64) -> Self {
        assert!(reject < accept, "reject threshold must be below accept");
        ProbabilisticAttr {
            weights: weights
                .iter()
                .map(|(a, w)| (AttrName::new(a), *w))
                .collect(),
            accept,
            reject,
        }
    }

    fn weight_of(&self, attr: &AttrName) -> f64 {
        self.weights
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
    }

    /// The comparison value of a pair: weighted fraction of agreeing
    /// common attributes; `None` when no common attribute is
    /// comparable (all NULL or schemas disjoint).
    pub fn comparison_value(
        &self,
        s1: &Schema,
        t1: &Tuple,
        s2: &Schema,
        t2: &Tuple,
    ) -> Option<f64> {
        let mut mass = 0.0;
        let mut agree = 0.0;
        for attr in s1.attribute_names() {
            if !s2.has_attribute(attr) {
                continue;
            }
            let a = t1.value_of(s1, attr)?;
            let b = t2.value_of(s2, attr)?;
            if a.is_null() || b.is_null() {
                continue;
            }
            let w = self.weight_of(attr);
            mass += w;
            if a.non_null_eq(b) {
                agree += w;
            }
        }
        (mass > 0.0).then(|| agree / mass)
    }
}

impl Technique for ProbabilisticAttr {
    fn name(&self) -> &str {
        "probabilistic-attr"
    }

    fn decide(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> MatchDecision {
        match self.comparison_value(s1, t1, s2, t2) {
            None => MatchDecision::Undetermined,
            Some(v) if v >= self.accept => MatchDecision::Matching,
            Some(v) if v <= self.reject => MatchDecision::NotMatching,
            Some(_) => MatchDecision::Undetermined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::{Schema, Value};

    fn schemas() -> (std::sync::Arc<Schema>, std::sync::Arc<Schema>) {
        (
            Schema::of_strs("R", &["name", "cuisine", "street"], &["name"]).unwrap(),
            Schema::of_strs("S", &["name", "cuisine", "city"], &["name"]).unwrap(),
        )
    }

    #[test]
    fn full_agreement_matches() {
        let (s1, s2) = schemas();
        let p = ProbabilisticAttr::uniform(0.9, 0.3);
        let d = p.decide(
            &s1,
            &Tuple::of_strs(&["villagewok", "chinese", "wash_ave"]),
            &s2,
            &Tuple::of_strs(&["villagewok", "chinese", "mpls"]),
        );
        assert_eq!(d, MatchDecision::Matching);
    }

    #[test]
    fn half_agreement_is_undetermined_then_rejected_by_threshold() {
        let (s1, s2) = schemas();
        let p = ProbabilisticAttr::uniform(0.9, 0.3);
        let d = p.decide(
            &s1,
            &Tuple::of_strs(&["villagewok", "chinese", "x"]),
            &s2,
            &Tuple::of_strs(&["villagewok", "greek", "y"]),
        );
        assert_eq!(d, MatchDecision::Undetermined); // 0.5 between thresholds
        let strict = ProbabilisticAttr::uniform(0.9, 0.6);
        let d = strict.decide(
            &s1,
            &Tuple::of_strs(&["villagewok", "chinese", "x"]),
            &s2,
            &Tuple::of_strs(&["villagewok", "greek", "y"]),
        );
        assert_eq!(d, MatchDecision::NotMatching);
    }

    #[test]
    fn weights_shift_the_value() {
        let (s1, s2) = schemas();
        // name weighted 3×: agreement on name alone gives 3/4.
        let p = ProbabilisticAttr::weighted(&[("name", 3.0)], 0.7, 0.2);
        let v = p
            .comparison_value(
                &s1,
                &Tuple::of_strs(&["villagewok", "chinese", "x"]),
                &s2,
                &Tuple::of_strs(&["villagewok", "greek", "y"]),
            )
            .unwrap();
        assert!((v - 0.75).abs() < 1e-9);
        assert_eq!(
            p.decide(
                &s1,
                &Tuple::of_strs(&["villagewok", "chinese", "x"]),
                &s2,
                &Tuple::of_strs(&["villagewok", "greek", "y"]),
            ),
            MatchDecision::Matching
        );
    }

    #[test]
    fn nulls_are_excluded_from_mass() {
        let (s1, s2) = schemas();
        let p = ProbabilisticAttr::uniform(0.9, 0.3);
        let v = p
            .comparison_value(
                &s1,
                &Tuple::new(vec![Value::str("villagewok"), Value::Null, Value::str("x")]),
                &s2,
                &Tuple::of_strs(&["villagewok", "chinese", "y"]),
            )
            .unwrap();
        assert_eq!(v, 1.0); // only name is comparable and it agrees
    }

    #[test]
    fn no_comparable_attribute_is_undetermined() {
        let (s1, s2) = schemas();
        let p = ProbabilisticAttr::uniform(0.9, 0.3);
        let d = p.decide(
            &s1,
            &Tuple::new(vec![Value::Null, Value::Null, Value::str("x")]),
            &s2,
            &Tuple::of_strs(&["villagewok", "chinese", "y"]),
        );
        assert_eq!(d, MatchDecision::Undetermined);
    }

    /// The Figure-2 defeat: identical common attributes, different
    /// entities — the comparison value cannot distinguish them.
    #[test]
    fn figure_2_false_match() {
        let s = Schema::of_strs("D", &["name", "cuisine"], &["name"]).unwrap();
        let p = ProbabilisticAttr::uniform(0.9, 0.3);
        let d = p.decide(
            &s,
            &Tuple::of_strs(&["villagewok", "chinese"]), // Wash. Ave. branch
            &s,
            &Tuple::of_strs(&["villagewok", "chinese"]), // Co. B2. Rd. branch
        );
        assert_eq!(d, MatchDecision::Matching); // unsound!
    }
}
