//! Baseline 2 — user-specified equivalence (§2.2.2).
//!
//! "This approach requires the user to specify equivalence between
//! object instances, e.g., as a table that maps local object ids to
//! global object ids … suggested for the Pegasus project. Because the
//! matching table can be very large, this approach can potentially be
//! extremely cumbersome." It is, however, general — it handles
//! synonyms and homonyms — and the paper's own technique explicitly
//! allows a knowledgeable user to add entries directly to the
//! matching table.

use std::collections::{HashMap, HashSet};

use eid_relational::{Schema, Tuple};
use eid_rules::MatchDecision;

use crate::technique::Technique;

/// A user-maintained equivalence table keyed by the relations'
/// primary-key values.
#[derive(Debug, Clone, Default)]
pub struct UserSpecified {
    pairs: HashSet<(Tuple, Tuple)>,
    r_key_positions: Vec<usize>,
    s_key_positions: Vec<usize>,
    /// Closed-world: pairs not in the table are declared
    /// `NotMatching` (a fully maintained table). Open-world leaves
    /// them `Undetermined` (a partially maintained table).
    closed_world: bool,
}

impl UserSpecified {
    /// Creates an empty table. `r_key_positions`/`s_key_positions`
    /// locate the primary keys inside tuples of each relation.
    pub fn new(
        r_key_positions: Vec<usize>,
        s_key_positions: Vec<usize>,
        closed_world: bool,
    ) -> Self {
        UserSpecified {
            pairs: HashSet::new(),
            r_key_positions,
            s_key_positions,
            closed_world,
        }
    }

    /// Asserts that the tuples with these key values are equivalent.
    pub fn assert_match(&mut self, r_key: Tuple, s_key: Tuple) {
        self.pairs.insert((r_key, s_key));
    }

    /// Number of asserted pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Builds a *complete, correct* user table from ground truth —
    /// modeling the ideal (and maximally cumbersome) case where the
    /// user enumerated every correspondence by hand. Useful as the
    /// oracle upper bound in comparisons.
    pub fn from_truth(
        truth: impl IntoIterator<Item = (Tuple, Tuple)>,
        r_key_positions: Vec<usize>,
        s_key_positions: Vec<usize>,
    ) -> Self {
        let mut t = UserSpecified::new(r_key_positions, s_key_positions, true);
        for (a, b) in truth {
            t.assert_match(a, b);
        }
        t
    }

    /// Simulates partial maintenance: keeps only the pairs accepted
    /// by `keep` (e.g. a coverage fraction), switching to open-world.
    pub fn thin(&self, mut keep: impl FnMut(&(Tuple, Tuple)) -> bool) -> Self {
        let mut pairs = HashSet::new();
        let mut ordered: Vec<&(Tuple, Tuple)> = self.pairs.iter().collect();
        ordered.sort_by_key(|p| format!("{}|{}", p.0, p.1));
        for p in ordered {
            if keep(p) {
                pairs.insert(p.clone());
            }
        }
        UserSpecified {
            pairs,
            r_key_positions: self.r_key_positions.clone(),
            s_key_positions: self.s_key_positions.clone(),
            closed_world: false,
        }
    }
}

impl Technique for UserSpecified {
    fn name(&self) -> &str {
        "user-specified"
    }

    fn decide(&self, _s1: &Schema, t1: &Tuple, _s2: &Schema, t2: &Tuple) -> MatchDecision {
        let key = (
            t1.project(&self.r_key_positions),
            t2.project(&self.s_key_positions),
        );
        if self.pairs.contains(&key) {
            MatchDecision::Matching
        } else if self.closed_world {
            MatchDecision::NotMatching
        } else {
            MatchDecision::Undetermined
        }
    }
}

/// A mutable global-id mapping in the Pegasus style: local ids from
/// each database map to a global object id; two tuples match iff
/// their local ids map to the same global id.
#[derive(Debug, Clone, Default)]
pub struct GlobalIdMap {
    r_to_global: HashMap<Tuple, u64>,
    s_to_global: HashMap<Tuple, u64>,
    r_key_positions: Vec<usize>,
    s_key_positions: Vec<usize>,
}

impl GlobalIdMap {
    /// Creates an empty mapping.
    pub fn new(r_key_positions: Vec<usize>, s_key_positions: Vec<usize>) -> Self {
        GlobalIdMap {
            r_to_global: HashMap::new(),
            s_to_global: HashMap::new(),
            r_key_positions,
            s_key_positions,
        }
    }

    /// Maps an `R` local id (key value) to a global id.
    pub fn map_r(&mut self, r_key: Tuple, global: u64) {
        self.r_to_global.insert(r_key, global);
    }

    /// Maps an `S` local id to a global id.
    pub fn map_s(&mut self, s_key: Tuple, global: u64) {
        self.s_to_global.insert(s_key, global);
    }
}

impl Technique for GlobalIdMap {
    fn name(&self) -> &str {
        "global-id-map"
    }

    fn decide(&self, _s1: &Schema, t1: &Tuple, _s2: &Schema, t2: &Tuple) -> MatchDecision {
        let a = self.r_to_global.get(&t1.project(&self.r_key_positions));
        let b = self.s_to_global.get(&t2.project(&self.s_key_positions));
        match (a, b) {
            (Some(x), Some(y)) if x == y => MatchDecision::Matching,
            (Some(_), Some(_)) => MatchDecision::NotMatching,
            _ => MatchDecision::Undetermined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of_strs("R", &["k", "v"], &["k"]).unwrap()
    }

    #[test]
    fn asserted_pairs_match() {
        let mut u = UserSpecified::new(vec![0], vec![0], true);
        u.assert_match(Tuple::of_strs(&["a"]), Tuple::of_strs(&["a"]));
        let s = schema();
        assert_eq!(
            u.decide(
                &s,
                &Tuple::of_strs(&["a", "1"]),
                &s,
                &Tuple::of_strs(&["a", "2"])
            ),
            MatchDecision::Matching
        );
        assert_eq!(
            u.decide(
                &s,
                &Tuple::of_strs(&["b", "1"]),
                &s,
                &Tuple::of_strs(&["a", "2"])
            ),
            MatchDecision::NotMatching
        );
    }

    #[test]
    fn open_world_leaves_unknown_undetermined() {
        let u = UserSpecified::new(vec![0], vec![0], false);
        let s = schema();
        assert_eq!(
            u.decide(
                &s,
                &Tuple::of_strs(&["b", "1"]),
                &s,
                &Tuple::of_strs(&["a", "2"])
            ),
            MatchDecision::Undetermined
        );
    }

    #[test]
    fn thinning_drops_entries_and_opens_world() {
        let truth = vec![
            (Tuple::of_strs(&["a"]), Tuple::of_strs(&["a"])),
            (Tuple::of_strs(&["b"]), Tuple::of_strs(&["b"])),
        ];
        let full = UserSpecified::from_truth(truth, vec![0], vec![0]);
        assert_eq!(full.len(), 2);
        let mut flip = false;
        let half = full.thin(|_| {
            flip = !flip;
            flip
        });
        assert_eq!(half.len(), 1);
        assert!(!half.closed_world);
    }

    #[test]
    fn global_id_map_matches_on_same_global() {
        let mut g = GlobalIdMap::new(vec![0], vec![0]);
        g.map_r(Tuple::of_strs(&["r1"]), 7);
        g.map_s(Tuple::of_strs(&["s1"]), 7);
        g.map_s(Tuple::of_strs(&["s2"]), 9);
        let s = schema();
        assert_eq!(
            g.decide(
                &s,
                &Tuple::of_strs(&["r1", "x"]),
                &s,
                &Tuple::of_strs(&["s1", "y"])
            ),
            MatchDecision::Matching
        );
        assert_eq!(
            g.decide(
                &s,
                &Tuple::of_strs(&["r1", "x"]),
                &s,
                &Tuple::of_strs(&["s2", "y"])
            ),
            MatchDecision::NotMatching
        );
        assert_eq!(
            g.decide(
                &s,
                &Tuple::of_strs(&["r9", "x"]),
                &s,
                &Tuple::of_strs(&["s1", "y"])
            ),
            MatchDecision::Undetermined
        );
    }
}
