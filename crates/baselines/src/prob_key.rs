//! Baseline 3 — probabilistic key equivalence (Pu, §2.2.3).
//!
//! "Instead of insisting on full key equivalence, Pu suggested
//! matching object instances using only a portion of the key values
//! in the restricted domain. The name matching problem … has been
//! addressed by matching the subfields of names. If most of the
//! subfields in two given names match, the names are considered to be
//! identical. … The probabilistic nature of matching may also admit
//! erroneous matching."
//!
//! We tokenize string key values into subfields (on `_`, `-`, `.`
//! and whitespace) and score a pair by the fraction of shared
//! subfields (Jaccard over subfield multisets collapsed to sets).
//! Scores at or above `accept` declare a match, at or below `reject`
//! a non-match, in between undetermined.

use std::collections::HashSet;

use eid_relational::{AttrName, Schema, Tuple, Value};
use eid_rules::MatchDecision;

use crate::technique::Technique;

/// Probabilistic key matching over a (string-valued) key attribute
/// set.
#[derive(Debug, Clone)]
pub struct ProbabilisticKey {
    key: Vec<AttrName>,
    /// Scores ≥ accept declare `Matching`.
    pub accept: f64,
    /// Scores ≤ reject declare `NotMatching`.
    pub reject: f64,
}

impl ProbabilisticKey {
    /// Builds the technique; requires `reject < accept`.
    pub fn new(key: &[&str], accept: f64, reject: f64) -> Self {
        assert!(reject < accept, "reject threshold must be below accept");
        ProbabilisticKey {
            key: key.iter().map(AttrName::new).collect(),
            accept,
            reject,
        }
    }

    /// Splits a value into subfields.
    fn subfields(v: &Value) -> HashSet<String> {
        match v {
            Value::Str(s) => s
                .split(|c: char| c == '_' || c == '-' || c == '.' || c.is_whitespace())
                .filter(|t| !t.is_empty())
                .map(str::to_string)
                .collect(),
            Value::Null => HashSet::new(),
            other => [other.render().into_owned()].into_iter().collect(),
        }
    }

    /// The subfield-overlap score of a pair: mean over key attributes
    /// of `|A ∩ B| / |A ∪ B|`; `None` when any key value is missing.
    pub fn score(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> Option<f64> {
        let mut total = 0.0;
        for attr in &self.key {
            let a = t1.value_of(s1, attr)?;
            let b = t2.value_of(s2, attr)?;
            if a.is_null() || b.is_null() {
                return None;
            }
            let sa = Self::subfields(a);
            let sb = Self::subfields(b);
            let union = sa.union(&sb).count();
            if union == 0 {
                return None;
            }
            let inter = sa.intersection(&sb).count();
            total += inter as f64 / union as f64;
        }
        Some(total / self.key.len() as f64)
    }
}

impl Technique for ProbabilisticKey {
    fn name(&self) -> &str {
        "probabilistic-key"
    }

    fn decide(&self, s1: &Schema, t1: &Tuple, s2: &Schema, t2: &Tuple) -> MatchDecision {
        match self.score(s1, t1, s2, t2) {
            None => MatchDecision::Undetermined,
            Some(score) if score >= self.accept => MatchDecision::Matching,
            Some(score) if score <= self.reject => MatchDecision::NotMatching,
            Some(_) => MatchDecision::Undetermined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_relational::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of_strs("R", &["name"], &["name"]).unwrap()
    }

    fn t(s: &str) -> Tuple {
        Tuple::of_strs(&[s])
    }

    #[test]
    fn identical_names_score_one() {
        let p = ProbabilisticKey::new(&["name"], 0.7, 0.2);
        let s = schema();
        assert_eq!(
            p.score(&s, &t("village_wok"), &s, &t("village_wok")),
            Some(1.0)
        );
        assert_eq!(
            p.decide(&s, &t("village_wok"), &s, &t("village_wok")),
            MatchDecision::Matching
        );
    }

    #[test]
    fn partial_subfield_overlap() {
        let p = ProbabilisticKey::new(&["name"], 0.7, 0.2);
        let s = schema();
        // {john, a, smith} vs {john, smith}: 2/3 overlap.
        let score = p
            .score(&s, &t("john_a_smith"), &s, &t("john_smith"))
            .unwrap();
        assert!((score - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(
            p.decide(&s, &t("john_a_smith"), &s, &t("john_smith")),
            MatchDecision::Undetermined
        );
        // Lower the accept threshold: now it matches.
        let loose = ProbabilisticKey::new(&["name"], 0.6, 0.2);
        assert_eq!(
            loose.decide(&s, &t("john_a_smith"), &s, &t("john_smith")),
            MatchDecision::Matching
        );
    }

    #[test]
    fn disjoint_names_reject() {
        let p = ProbabilisticKey::new(&["name"], 0.7, 0.2);
        let s = schema();
        assert_eq!(
            p.decide(&s, &t("village_wok"), &s, &t("old_country")),
            MatchDecision::NotMatching
        );
    }

    #[test]
    fn null_key_is_undetermined() {
        let p = ProbabilisticKey::new(&["name"], 0.7, 0.2);
        let s = schema();
        let null = Tuple::new(vec![Value::Null]);
        assert_eq!(
            p.decide(&s, &null, &s, &t("x")),
            MatchDecision::Undetermined
        );
    }

    /// The §2.2 caveat: erroneous matches are possible — two different
    /// people sharing most subfields.
    #[test]
    fn erroneous_match_possible() {
        let p = ProbabilisticKey::new(&["name"], 0.6, 0.2);
        let s = schema();
        // john_smith_jr vs john_smith — different people, 2/3 overlap.
        assert_eq!(
            p.decide(&s, &t("john_smith_jr"), &s, &t("john_smith")),
            MatchDecision::Matching
        );
    }

    #[test]
    #[should_panic(expected = "reject threshold")]
    fn invalid_thresholds_panic() {
        ProbabilisticKey::new(&["name"], 0.2, 0.7);
    }
}
