//! # `eid-baselines` — the five §2.2 baseline techniques
//!
//! Lim et al. survey five existing approaches to entity
//! identification before proposing theirs; all five are implemented
//! here behind one [`Technique`] trait so the comparison experiments
//! can measure their soundness and completeness against the ILFD
//! technique on synthetic integrated worlds:
//!
//! 1. [`key_equiv::KeyEquivalence`] — common-candidate-key equality
//!    (Multibase); unsound under instance-level homonyms;
//! 2. [`user_map::UserSpecified`] / [`user_map::GlobalIdMap`] —
//!    user-maintained equivalence tables (Pegasus); sound but
//!    cumbersome, incomplete when under-maintained;
//! 3. [`prob_key::ProbabilisticKey`] — subfield matching of key
//!    values (Pu); "may admit erroneous matching";
//! 4. [`prob_attr::ProbabilisticAttr`] — weighted comparison values
//!    over all common attributes (Chatterjee & Segev); defeated by
//!    the Figure-2 scenario;
//! 5. [`heuristic::HeuristicRules`] — confidence-weighted inference
//!    rules (Wang & Madnick); "the matching result produced may not
//!    be correct".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod heuristic;
pub mod key_equiv;
pub mod prob_attr;
pub mod prob_key;
pub mod technique;
pub mod user_map;

pub use heuristic::{HeuristicRule, HeuristicRules};
pub use key_equiv::KeyEquivalence;
pub use prob_attr::ProbabilisticAttr;
pub use prob_key::ProbabilisticKey;
pub use technique::{evaluate_technique, run_technique, Technique, TechniqueOutcome};
pub use user_map::{GlobalIdMap, UserSpecified};
