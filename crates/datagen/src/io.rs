//! Workload export/import: a generated workload written as plain
//! files (two CSVs, a rules file in the `eid-rules` syntax, and a
//! ground-truth CSV) so experiments are reproducible outside this
//! process — the same files the `eid` CLI consumes.

use std::path::Path;

use eid_core::metrics::GroundTruth;
use eid_ilfd::IlfdSet;
use eid_relational::{csv, Relation, Tuple};
use eid_rules::parser::{ilfds_to_source, parse_rules};

use crate::generator::Workload;

/// Errors from workload I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// CSV or schema failure.
    Relational(eid_relational::RelationalError),
    /// Rules-file failure.
    Parse(eid_rules::ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "{e}"),
            IoError::Relational(e) => write!(f, "{e}"),
            IoError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<eid_relational::RelationalError> for IoError {
    fn from(e: eid_relational::RelationalError) -> Self {
        IoError::Relational(e)
    }
}

impl From<eid_rules::ParseError> for IoError {
    fn from(e: eid_rules::ParseError) -> Self {
        IoError::Parse(e)
    }
}

/// The on-disk file names used by [`export_workload`].
pub const FILE_R: &str = "r.csv";
/// See [`FILE_R`].
pub const FILE_S: &str = "s.csv";
/// See [`FILE_R`].
pub const FILE_RULES: &str = "knowledge.rules";
/// See [`FILE_R`].
pub const FILE_TRUTH: &str = "truth.csv";

/// Writes `workload` into `dir` (created if missing): `r.csv`,
/// `s.csv`, `knowledge.rules`, `truth.csv` (pipe-separated key
/// pairs).
pub fn export_workload(workload: &Workload, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(FILE_R), csv::to_csv(&workload.r))?;
    std::fs::write(dir.join(FILE_S), csv::to_csv(&workload.s))?;
    std::fs::write(dir.join(FILE_RULES), ilfds_to_source(&workload.ilfds))?;

    // truth.csv: r-key values, then s-key values, pipe-joined per side.
    let mut truth = String::from("r_key,s_key\n");
    let mut rows: Vec<String> = workload
        .truth
        .iter()
        .map(|(rk, sk)| format!("{},{}", join_key(rk), join_key(sk)))
        .collect();
    rows.sort();
    truth.push_str(&rows.join("\n"));
    truth.push('\n');
    std::fs::write(dir.join(FILE_TRUTH), truth)?;
    Ok(())
}

fn join_key(t: &Tuple) -> String {
    t.values()
        .iter()
        .map(|v| v.render().into_owned())
        .collect::<Vec<_>>()
        .join("|")
}

fn split_key(s: &str) -> Tuple {
    Tuple::of_strs(&s.split('|').collect::<Vec<_>>())
}

/// The files read back: relations, ILFDs, and truth.
#[derive(Debug, Clone)]
pub struct ImportedWorkload {
    /// Relation `R` (key re-enforced from `r_key` attribute names).
    pub r: Relation,
    /// Relation `S`.
    pub s: Relation,
    /// The knowledge file's ILFDs.
    pub ilfds: IlfdSet,
    /// The ground truth.
    pub truth: GroundTruth,
}

/// Reads a workload directory written by [`export_workload`].
/// `r_key`/`s_key` name the candidate keys (they are data, not part
/// of the CSV format).
pub fn import_workload(
    dir: &Path,
    r_key: &[&str],
    s_key: &[&str],
) -> Result<ImportedWorkload, IoError> {
    let r_text = std::fs::read_to_string(dir.join(FILE_R))?;
    let s_text = std::fs::read_to_string(dir.join(FILE_S))?;
    let rules_text = std::fs::read_to_string(dir.join(FILE_RULES))?;
    let truth_text = std::fs::read_to_string(dir.join(FILE_TRUTH))?;

    let r = csv::from_csv_inferred("R", &r_text, r_key)?;
    let s = csv::from_csv_inferred("S", &s_text, s_key)?;
    let ilfds = parse_rules(&rules_text)?.ilfds();

    let mut truth = GroundTruth::new();
    for line in truth_text.lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        let (rk, sk) = line.split_once(',').ok_or_else(|| {
            IoError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed truth row: {line}"),
            ))
        })?;
        truth.add(split_key(rk), split_key(sk));
    }
    Ok(ImportedWorkload { r, s, ilfds, truth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eid-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_round_trip() {
        let w = generate(&GeneratorConfig {
            n_entities: 40,
            ..GeneratorConfig::default()
        });
        let dir = tmpdir("roundtrip");
        export_workload(&w, &dir).unwrap();
        let back = import_workload(&dir, &["name", "street"], &["name", "speciality"]).unwrap();
        assert!(w.r.same_tuples(&back.r));
        assert!(w.s.same_tuples(&back.s));
        assert!(eid_ilfd::closure::equivalent(&w.ilfds, &back.ilfds));
        assert_eq!(w.truth.len(), back.truth.len());
        for (rk, sk) in w.truth.iter() {
            assert!(back.truth.is_match(rk, sk), "lost pair {rk} ↔ {sk}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn imported_workload_matches_like_the_original() {
        use eid_core::matcher::{EntityMatcher, MatchConfig};
        let w = generate(&GeneratorConfig {
            n_entities: 30,
            ..GeneratorConfig::default()
        });
        let dir = tmpdir("rerun");
        export_workload(&w, &dir).unwrap();
        let back = import_workload(&dir, &["name", "street"], &["name", "speciality"]).unwrap();

        let a = EntityMatcher::new(
            w.r.clone(),
            w.s.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        )
        .unwrap()
        .run()
        .unwrap();
        let b = EntityMatcher::new(
            back.r,
            back.s,
            MatchConfig::new(w.extended_key.clone(), back.ilfds),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(a.matching.len(), b.matching.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = tmpdir("missing");
        assert!(import_workload(&dir, &["name"], &["name"]).is_err());
    }
}
