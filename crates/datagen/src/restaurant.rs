//! The paper's restaurant fixtures, verbatim.
//!
//! Values are lower-cased and underscored the way the Prolog
//! prototype asserts them (`wash_ave`, `co_b2`, …), so printed tables
//! line up with §6.3's transcript.

use eid_ilfd::{Ilfd, IlfdSet};
use eid_relational::{Relation, Schema};
use eid_rules::ExtendedKey;

/// Example 1 (Table 1): `R(name, street, cuisine)` with key
/// `(name, street)` and `S(name, city, manager)` with key
/// `(name, city)`.
pub fn example1() -> (Relation, Relation) {
    let r_schema = Schema::of_strs("R", &["name", "street", "cuisine"], &["name", "street"])
        .expect("valid schema");
    let mut r = Relation::new(r_schema);
    r.insert_strs(&["villagewok", "wash_ave", "chinese"])
        .unwrap();
    r.insert_strs(&["ching", "co_b_rd", "chinese"]).unwrap();
    r.insert_strs(&["oldcountry", "co_b2_rd", "american"])
        .unwrap();

    let s_schema = Schema::of_strs("S", &["name", "city", "manager"], &["name", "city"])
        .expect("valid schema");
    let mut s = Relation::new(s_schema);
    s.insert_strs(&["villagewok", "mpls", "hwang"]).unwrap();
    s.insert_strs(&["oldcountry", "roseville", "libby"])
        .unwrap();
    s.insert_strs(&["expresscafe", "burnsville", "tom"])
        .unwrap();
    (r, s)
}

/// The Example 1 insertion that breaks naive name matching: a second
/// VillageWok on Penn. Ave.
pub fn example1_ambiguous_insert(r: &mut Relation) {
    r.insert_strs(&["villagewok", "penn_ave", "chinese"])
        .expect("legal insert: same name, different street");
}

/// Figure 2: two databases each holding `(VillageWok, Chinese)` — the
/// same attribute values for two *different* real-world restaurants
/// (Wash. Ave. vs Co. B2. Rd.). Returns `(db1, db2)` without domain
/// attributes.
pub fn figure2() -> (Relation, Relation) {
    let schema1 = Schema::of_strs("R", &["name", "cuisine"], &["name", "cuisine"]).expect("valid");
    let mut db1 = Relation::new(schema1);
    db1.insert_strs(&["villagewok", "chinese"]).unwrap();

    let schema2 = Schema::of_strs("S", &["name", "cuisine"], &["name", "cuisine"]).expect("valid");
    let mut db2 = Relation::new(schema2);
    db2.insert_strs(&["villagewok", "chinese"]).unwrap();
    (db1, db2)
}

/// Figure 2 with the paper's fix: a `domain` attribute distinguishing
/// the databases' modeled subsets.
pub fn figure2_with_domain() -> (Relation, Relation) {
    let schema1 = Schema::of_strs(
        "R",
        &["name", "cuisine", "domain"],
        &["name", "cuisine", "domain"],
    )
    .expect("valid");
    let mut db1 = Relation::new(schema1);
    db1.insert_strs(&["villagewok", "chinese", "db1"]).unwrap();

    let schema2 = Schema::of_strs(
        "S",
        &["name", "cuisine", "domain"],
        &["name", "cuisine", "domain"],
    )
    .expect("valid");
    let mut db2 = Relation::new(schema2);
    db2.insert_strs(&["villagewok", "chinese", "db2"]).unwrap();
    (db1, db2)
}

/// Example 2 (Table 2): the two-TwinCities workload with extended key
/// `{name, cuisine}` and the single Mughalai ILFD.
pub fn example2() -> (Relation, Relation, ExtendedKey, IlfdSet) {
    let r_schema =
        Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).expect("valid");
    let mut r = Relation::new(r_schema);
    r.insert_strs(&["twincities", "chinese", "wash_ave"])
        .unwrap();
    r.insert_strs(&["twincities", "indian", "univ_ave"])
        .unwrap();

    let s_schema =
        Schema::of_strs("S", &["name", "speciality", "city"], &["name", "city"]).expect("valid");
    let mut s = Relation::new(s_schema);
    s.insert_strs(&["twincities", "mughalai", "st_paul"])
        .unwrap();

    let ilfds: IlfdSet = vec![Ilfd::of_strs(
        &[("speciality", "mughalai")],
        &[("cuisine", "indian")],
    )]
    .into_iter()
    .collect();
    (r, s, ExtendedKey::of_strs(&["name", "cuisine"]), ilfds)
}

/// Example 3 (Table 5): the five-restaurant `R` and four-restaurant
/// `S` with extended key `{name, cuisine, speciality}`.
pub fn example3() -> (Relation, Relation, ExtendedKey, IlfdSet) {
    let r_schema =
        Schema::of_strs("R", &["name", "cuisine", "street"], &["name", "cuisine"]).expect("valid");
    let mut r = Relation::new(r_schema);
    r.insert_strs(&["twincities", "chinese", "co_b2"]).unwrap();
    r.insert_strs(&["twincities", "indian", "co_b3"]).unwrap();
    r.insert_strs(&["itsgreek", "greek", "front_ave"]).unwrap();
    r.insert_strs(&["anjuman", "indian", "le_salle_ave"])
        .unwrap();
    r.insert_strs(&["villagewok", "chinese", "wash_ave"])
        .unwrap();

    let s_schema = Schema::of_strs(
        "S",
        &["name", "speciality", "county"],
        &["name", "speciality"],
    )
    .expect("valid");
    let mut s = Relation::new(s_schema);
    s.insert_strs(&["twincities", "hunan", "roseville"])
        .unwrap();
    s.insert_strs(&["twincities", "sichuan", "hennepin"])
        .unwrap();
    s.insert_strs(&["itsgreek", "gyros", "ramsey"]).unwrap();
    s.insert_strs(&["anjuman", "mughalai", "minneapolis"])
        .unwrap();

    (
        r,
        s,
        ExtendedKey::of_strs(&["name", "cuisine", "speciality"]),
        example3_ilfds(),
    )
}

/// The eight ILFDs I1–I8 of Example 3, in the paper's order.
pub fn example3_ilfds() -> IlfdSet {
    vec![
        // I1–I4: speciality determines cuisine.
        Ilfd::of_strs(&[("speciality", "hunan")], &[("cuisine", "chinese")]),
        Ilfd::of_strs(&[("speciality", "sichuan")], &[("cuisine", "chinese")]),
        Ilfd::of_strs(&[("speciality", "gyros")], &[("cuisine", "greek")]),
        Ilfd::of_strs(&[("speciality", "mughalai")], &[("cuisine", "indian")]),
        // I5–I6: specific restaurants' specialities.
        Ilfd::of_strs(
            &[("name", "twincities"), ("street", "co_b2")],
            &[("speciality", "hunan")],
        ),
        Ilfd::of_strs(
            &[("name", "anjuman"), ("street", "le_salle_ave")],
            &[("speciality", "mughalai")],
        ),
        // I7–I8: the chain that derives I9.
        Ilfd::of_strs(&[("street", "front_ave")], &[("county", "ramsey")]),
        Ilfd::of_strs(
            &[("name", "itsgreek"), ("county", "ramsey")],
            &[("speciality", "gyros")],
        ),
    ]
    .into_iter()
    .collect()
}

/// The derived ILFD I9 (provable from I7 + I8).
pub fn ilfd_i9() -> Ilfd {
    Ilfd::of_strs(
        &[("name", "itsgreek"), ("street", "front_ave")],
        &[("speciality", "gyros")],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_ilfd::closure::implies;

    #[test]
    fn example1_shapes() {
        let (r, s) = example1();
        assert_eq!(r.len(), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(r.schema().primary_key().len(), 2);
    }

    #[test]
    fn ambiguous_insert_is_legal_for_r_key() {
        let (mut r, _) = example1();
        example1_ambiguous_insert(&mut r);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn figure2_tuples_are_attribute_identical() {
        let (a, b) = figure2();
        assert_eq!(a.tuples()[0], b.tuples()[0]);
        let (a, b) = figure2_with_domain();
        assert_ne!(a.tuples()[0], b.tuples()[0]);
    }

    #[test]
    fn example3_has_expected_sizes() {
        let (r, s, key, ilfds) = example3();
        assert_eq!(r.len(), 5);
        assert_eq!(s.len(), 4);
        assert_eq!(key.len(), 3);
        assert_eq!(ilfds.len(), 8);
    }

    #[test]
    fn i9_is_derivable_from_i7_i8() {
        assert!(implies(&example3_ilfds(), &ilfd_i9()));
        // …but not from I1–I6 alone.
        let partial: IlfdSet = example3_ilfds().iter().take(6).cloned().collect();
        assert!(!implies(&partial, &ilfd_i9()));
    }
}
