//! Synthetic integrated-world generator.
//!
//! Simulates the situation the paper targets: one real-world domain
//! (restaurant-like entities) independently captured by two
//! databases whose relations **share no candidate key**:
//!
//! * `R(name, cuisine, street, city)` with key `(name, street)`;
//! * `S(name, speciality, county, city)` with key `(name, speciality)`.
//!
//! The integrated world is constructed so that
//! `K_Ext = {name, cuisine}` is a genuine key (homonym entities that
//! share a name always differ in cuisine), and so that every tuple is
//! consistent with a functional `speciality → cuisine` ILFD family —
//! the knowledge a DBA would assert. The generator hands the matcher
//! only a configurable *coverage fraction* of that family, which is
//! the knob behind the Figure-3 completeness curves; a *homonym rate*
//! controls how often naive name matching is wrong, and a *noise
//! rate* injects attribute-value conflicts into the shared `city`
//! column to stress the probabilistic baselines.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use eid_core::metrics::GroundTruth;
use eid_ilfd::{Ilfd, IlfdSet};
use eid_relational::{Relation, Schema, Tuple};
use eid_rules::ExtendedKey;

use crate::vocab;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of real-world entities in the integrated world.
    pub n_entities: usize,
    /// Probability an entity is modeled in *both* databases
    /// (remaining entities split evenly between `R`-only / `S`-only).
    pub overlap: f64,
    /// Probability an entity reuses an existing entity's name
    /// (instance-level homonyms; the paper's Example 1 failure mode).
    pub homonym_rate: f64,
    /// Fraction of the `speciality → cuisine` ILFD family supplied to
    /// the matcher.
    pub ilfd_coverage: f64,
    /// Probability the shared `city` value is corrupted in `S`
    /// (attribute-value conflict).
    pub noise: f64,
    /// Number of distinct specialities (each maps to one cuisine).
    pub n_specialities: usize,
    /// Number of distinct cuisines.
    pub n_cuisines: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_entities: 100,
            overlap: 0.5,
            homonym_rate: 0.1,
            ilfd_coverage: 1.0,
            noise: 0.0,
            n_specialities: 24,
            n_cuisines: 8,
            seed: 0xE1D,
        }
    }
}

/// A generated workload with ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Database 1's relation.
    pub r: Relation,
    /// Database 2's relation.
    pub s: Relation,
    /// The extended key of the integrated world (`{name, cuisine}`).
    pub extended_key: ExtendedKey,
    /// The ILFDs supplied to the matcher (covered subset).
    pub ilfds: IlfdSet,
    /// The complete `speciality → cuisine` family.
    pub full_ilfds: IlfdSet,
    /// True tuple correspondence (by primary-key values).
    pub truth: GroundTruth,
    /// The integrated world itself (one row per entity).
    pub universe: Relation,
    /// The configuration used.
    pub config: GeneratorConfig,
}

/// Which database(s) model an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    Both,
    ROnly,
    SOnly,
}

/// Generates a workload from `config`. Deterministic per seed.
pub fn generate(config: &GeneratorConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_entities;

    // Vocabularies.
    let specialities = vocab::pool(&mut rng, config.n_specialities, 2);
    let cuisines = vocab::pool(&mut rng, config.n_cuisines, 2);
    let name_pool = vocab::pool(&mut rng, n.max(1), 2)
        .into_iter()
        .zip(vocab::pool(&mut rng, n.max(1), 1))
        .map(|(a, b)| format!("{a}_{b}"))
        .collect::<Vec<_>>();
    let streets = vocab::street_pool(&mut rng, n.max(1));
    let cities = vocab::pool(&mut rng, (n / 10).max(3), 2);

    // The functional speciality → cuisine map (the ILFD family).
    let cuisine_of = |spec_idx: usize| &cuisines[spec_idx % cuisines.len()];
    let full_ilfds: IlfdSet = (0..specialities.len())
        .map(|i| {
            Ilfd::of_strs(
                &[("speciality", &specialities[i])],
                &[("cuisine", cuisine_of(i))],
            )
        })
        .collect();

    // Covered subset, deterministic shuffle.
    let mut order: Vec<usize> = (0..specialities.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let covered = ((specialities.len() as f64) * config.ilfd_coverage).round() as usize;
    let covered_specs: std::collections::HashSet<usize> = order.into_iter().take(covered).collect();
    let ilfds: IlfdSet = (0..specialities.len())
        .filter(|i| covered_specs.contains(i))
        .map(|i| {
            Ilfd::of_strs(
                &[("speciality", &specialities[i])],
                &[("cuisine", cuisine_of(i))],
            )
        })
        .collect();

    // Entities. (name, cuisine) must be unique — resample speciality
    // for homonyms until the cuisine differs from all same-named
    // entities.
    struct Entity {
        name: String,
        spec_idx: usize,
        street: String,
        city: String,
        membership: Membership,
    }
    let mut entities: Vec<Entity> = Vec::with_capacity(n);
    let mut used: std::collections::HashMap<String, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        let name = if i > 0 && rng.random_bool(config.homonym_rate) {
            entities[rng.random_range(0..i)].name.clone()
        } else {
            name_pool[i].clone()
        };
        let taken: Vec<usize> = used.get(&name).cloned().unwrap_or_default();
        // Find a speciality whose cuisine is new for this name.
        let mut spec_idx = rng.random_range(0..specialities.len());
        let mut attempts = 0;
        while taken
            .iter()
            .any(|&j| cuisine_of(entities[j].spec_idx) == cuisine_of(spec_idx))
        {
            spec_idx = rng.random_range(0..specialities.len());
            attempts += 1;
            if attempts > 64 {
                break; // give up on the homonym; fall back to a fresh name below
            }
        }
        let name = if attempts > 64 {
            name_pool[i].clone()
        } else {
            name
        };
        let membership = if rng.random_bool(config.overlap) {
            Membership::Both
        } else if rng.random_bool(0.5) {
            Membership::ROnly
        } else {
            Membership::SOnly
        };
        used.entry(name.clone()).or_default().push(i);
        entities.push(Entity {
            name,
            spec_idx,
            street: streets[i].clone(),
            city: cities[rng.random_range(0..cities.len())].clone(),
            membership,
        });
    }

    // Universe relation.
    let u_schema = Schema::of_strs(
        "World",
        &["name", "cuisine", "speciality", "street", "city"],
        &["name", "cuisine"],
    )
    .expect("valid schema");
    let mut universe = Relation::new_unchecked(u_schema);
    for e in &entities {
        universe
            .insert(Tuple::of_strs(&[
                &e.name,
                cuisine_of(e.spec_idx),
                &specialities[e.spec_idx],
                &e.street,
                &e.city,
            ]))
            .expect("arity");
    }

    // Project into R and S.
    let r_schema = Schema::of_strs(
        "R",
        &["name", "cuisine", "street", "city"],
        &["name", "street"],
    )
    .expect("valid schema");
    let s_schema = Schema::of_strs(
        "S",
        &["name", "speciality", "county", "city"],
        &["name", "speciality"],
    )
    .expect("valid schema");
    let mut r = Relation::new(r_schema);
    let mut s = Relation::new(s_schema);
    let mut truth = GroundTruth::new();

    for e in &entities {
        let in_r = matches!(e.membership, Membership::Both | Membership::ROnly);
        let in_s = matches!(e.membership, Membership::Both | Membership::SOnly);
        if in_r {
            r.insert(Tuple::of_strs(&[
                &e.name,
                cuisine_of(e.spec_idx),
                &e.street,
                &e.city,
            ]))
            .expect("(name, street) unique by construction");
        }
        if in_s {
            let city = if config.noise > 0.0 && rng.random_bool(config.noise) {
                // Attribute-value conflict: a different city.
                cities[rng.random_range(0..cities.len())].clone()
            } else {
                e.city.clone()
            };
            let county = format!("{}_county", e.city);
            if s.insert(Tuple::of_strs(&[
                &e.name,
                &specialities[e.spec_idx],
                &county,
                &city,
            ]))
            .is_err()
            {
                // (name, speciality) collided with an earlier entity —
                // rare with homonyms; skip the S copy.
                continue;
            }
            if in_r {
                truth.add(
                    Tuple::of_strs(&[&e.name, &e.street]),
                    Tuple::of_strs(&[&e.name, &specialities[e.spec_idx]]),
                );
            }
        }
    }

    Workload {
        r,
        s,
        extended_key: ExtendedKey::of_strs(&["name", "cuisine"]),
        ilfds,
        full_ilfds,
        truth,
        universe,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_core::matcher::{EntityMatcher, MatchConfig};
    use eid_core::metrics::Evaluation;
    use eid_ilfd::satisfaction::relation_satisfies_all;

    #[test]
    fn deterministic_per_seed() {
        let c = GeneratorConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert!(a.r.same_tuples(&b.r));
        assert!(a.s.same_tuples(&b.s));
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn extended_key_is_a_key_of_the_universe() {
        let w = generate(&GeneratorConfig {
            n_entities: 300,
            homonym_rate: 0.3,
            ..GeneratorConfig::default()
        });
        assert!(w.extended_key.unique_in(&w.universe));
    }

    #[test]
    fn universe_satisfies_the_full_ilfd_family() {
        let w = generate(&GeneratorConfig::default());
        assert!(relation_satisfies_all(&w.universe, &w.full_ilfds));
    }

    #[test]
    fn full_coverage_yields_sound_and_recall_one_matching() {
        let w = generate(&GeneratorConfig {
            n_entities: 150,
            ilfd_coverage: 1.0,
            homonym_rate: 0.2,
            ..GeneratorConfig::default()
        });
        let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        outcome.verify().unwrap();
        let e = Evaluation::compute(
            &w.truth,
            &outcome.matching,
            &outcome.negative,
            w.r.len() * w.s.len(),
        );
        assert!(e.is_sound(), "{e:?}");
        assert_eq!(e.match_recall(), 1.0, "{e:?}");
    }

    #[test]
    fn partial_coverage_is_sound_but_incomplete() {
        let w = generate(&GeneratorConfig {
            n_entities: 150,
            ilfd_coverage: 0.4,
            ..GeneratorConfig::default()
        });
        let config = MatchConfig::new(w.extended_key.clone(), w.ilfds.clone());
        let outcome = EntityMatcher::new(w.r.clone(), w.s.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let e = Evaluation::compute(
            &w.truth,
            &outcome.matching,
            &outcome.negative,
            w.r.len() * w.s.len(),
        );
        assert!(e.is_sound(), "{e:?}");
        assert!(e.match_recall() < 1.0, "{e:?}");
    }

    #[test]
    fn homonyms_exist_at_high_rates() {
        let w = generate(&GeneratorConfig {
            n_entities: 200,
            homonym_rate: 0.4,
            ..GeneratorConfig::default()
        });
        let names: Vec<&str> = w
            .universe
            .iter()
            .map(|t| t.get(0).as_str().unwrap())
            .collect();
        let distinct: std::collections::HashSet<_> = names.iter().collect();
        assert!(distinct.len() < names.len(), "expected repeated names");
    }

    #[test]
    fn noise_corrupts_cities() {
        let clean = generate(&GeneratorConfig {
            noise: 0.0,
            ..GeneratorConfig::default()
        });
        let noisy = generate(&GeneratorConfig {
            noise: 0.5,
            ..GeneratorConfig::default()
        });
        // Count S tuples whose city disagrees with the matched R tuple.
        let disagreements = |w: &Workload| {
            let mut n = 0;
            for (rk, sk) in w.truth.iter().map(|p| (&p.0, &p.1)) {
                let rt = w.r.find_by_primary_key(rk).unwrap();
                let st = w.s.find_by_primary_key(sk).unwrap();
                let rc = rt.value_of(w.r.schema(), &"city".into()).unwrap();
                let sc = st.value_of(w.s.schema(), &"city".into()).unwrap();
                if !rc.non_null_eq(sc) {
                    n += 1;
                }
            }
            n
        };
        assert_eq!(disagreements(&clean), 0);
        assert!(disagreements(&noisy) > 0);
    }

    #[test]
    fn ilfd_coverage_bounds_supplied_set() {
        let w = generate(&GeneratorConfig {
            ilfd_coverage: 0.5,
            ..GeneratorConfig::default()
        });
        assert_eq!(w.ilfds.len(), 12); // half of 24 specialities
        assert_eq!(w.full_ilfds.len(), 24);
    }
}
