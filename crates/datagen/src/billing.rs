//! The integrated-billing scenario from the paper's introduction:
//! "the integration of operations of different organizations (for
//! example, corporate mergers and acquisitions, or integrated
//! billing, as in the case of U.S. West and AT&T)."
//!
//! Two carriers bill the same subscriber lines:
//!
//! * the local carrier's `Local(phone, customer, exchange, plan)`,
//!   keyed by `phone`;
//! * the long-distance carrier's `LongDist(account, customer,
//!   region)`, keyed by `account`.
//!
//! There is no common candidate key — `phone` and `account` are
//! different identifier spaces — and `customer` alone is ambiguous
//! (the same person holds lines in several regions). The integrated
//! world's extended key is `{customer, region}`; the local carrier
//! derives `region` from its `exchange` codes via the ILFD family
//! `exchange = eXX → region = rYY` (exchanges nest inside regions).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use eid_core::metrics::GroundTruth;
use eid_ilfd::{Ilfd, IlfdSet};
use eid_relational::{Relation, Schema, Tuple};
use eid_rules::ExtendedKey;

use crate::vocab;

/// Parameters for the billing workload.
#[derive(Debug, Clone)]
pub struct BillingConfig {
    /// Number of subscriber lines in the integrated world.
    pub n_lines: usize,
    /// Number of distinct customers (fewer ⇒ more same-name lines).
    pub n_customers: usize,
    /// Number of regions.
    pub n_regions: usize,
    /// Exchanges per region.
    pub exchanges_per_region: usize,
    /// Probability a line is billed by *both* carriers.
    pub overlap: f64,
    /// Fraction of the exchange → region ILFD family supplied.
    pub ilfd_coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BillingConfig {
    fn default() -> Self {
        BillingConfig {
            n_lines: 120,
            n_customers: 60,
            n_regions: 5,
            exchanges_per_region: 4,
            overlap: 0.6,
            ilfd_coverage: 1.0,
            seed: 0xB111,
        }
    }
}

/// The generated billing workload.
#[derive(Debug, Clone)]
pub struct BillingWorkload {
    /// The local carrier's relation.
    pub local: Relation,
    /// The long-distance carrier's relation.
    pub long_dist: Relation,
    /// `{customer, region}`.
    pub extended_key: ExtendedKey,
    /// The supplied exchange → region ILFDs.
    pub ilfds: IlfdSet,
    /// The complete family.
    pub full_ilfds: IlfdSet,
    /// True line correspondence (local.phone ↔ long_dist.account).
    pub truth: GroundTruth,
    /// The integrated world (one row per line).
    pub universe: Relation,
}

/// Generates a billing workload. Deterministic per seed.
pub fn generate_billing(config: &BillingConfig) -> BillingWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let customers = vocab::pool(&mut rng, config.n_customers.max(1), 2);
    let n_exchanges = config.n_regions * config.exchanges_per_region;

    // exchange e{i} belongs to region r{i / exchanges_per_region}.
    let region_of = |exchange: usize| exchange / config.exchanges_per_region;
    let full_ilfds: IlfdSet = (0..n_exchanges)
        .map(|e| {
            Ilfd::of_strs(
                &[("exchange", &format!("e{e:02}"))],
                &[("region", &format!("r{}", region_of(e)))],
            )
        })
        .collect();
    let covered = ((n_exchanges as f64) * config.ilfd_coverage).round() as usize;
    let ilfds: IlfdSet = full_ilfds.iter().take(covered).cloned().collect();

    // Lines: (customer, region) unique; phone/account unique serials.
    let mut taken: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let u_schema = Schema::of_strs(
        "Lines",
        &["customer", "region", "exchange", "phone", "account"],
        &["customer", "region"],
    )
    .expect("valid schema");
    let mut universe = Relation::new(u_schema);

    let local_schema = Schema::of_strs(
        "Local",
        &["phone", "customer", "exchange", "plan"],
        &["phone"],
    )
    .expect("valid schema");
    let ld_schema = Schema::of_strs("LongDist", &["account", "customer", "region"], &["account"])
        .expect("valid schema");
    let mut local = Relation::new(local_schema);
    let mut long_dist = Relation::new(ld_schema);
    let mut truth = GroundTruth::new();

    let plans = ["basic", "family", "business"];
    let mut line = 0usize;
    let mut attempts = 0usize;
    while line < config.n_lines && attempts < config.n_lines * 20 {
        attempts += 1;
        let cust = rng.random_range(0..customers.len());
        let exch = rng.random_range(0..n_exchanges);
        let region = region_of(exch);
        if !taken.insert((cust, region)) {
            continue; // that customer already has a line in the region
        }
        let phone = format!("p{line:05}");
        let account = format!("a{line:05}");
        let customer = &customers[cust];
        let exchange = format!("e{exch:02}");
        let region_s = format!("r{region}");
        universe
            .insert(Tuple::of_strs(&[
                customer, &region_s, &exchange, &phone, &account,
            ]))
            .expect("(customer, region) unique");

        let in_local = rng.random_bool(config.overlap) || rng.random_bool(0.5);
        let in_ld = rng.random_bool(config.overlap) || !in_local;
        if in_local {
            local
                .insert(Tuple::of_strs(&[
                    &phone,
                    customer,
                    &exchange,
                    plans[line % plans.len()],
                ]))
                .expect("phone unique");
        }
        if in_ld {
            long_dist
                .insert(Tuple::of_strs(&[&account, customer, &region_s]))
                .expect("account unique");
        }
        if in_local && in_ld {
            truth.add(Tuple::of_strs(&[&phone]), Tuple::of_strs(&[&account]));
        }
        line += 1;
    }

    BillingWorkload {
        local,
        long_dist,
        extended_key: ExtendedKey::of_strs(&["customer", "region"]),
        ilfds,
        full_ilfds,
        truth,
        universe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eid_core::matcher::{EntityMatcher, MatchConfig};
    use eid_core::metrics::Evaluation;

    #[test]
    fn extended_key_is_a_key_of_the_universe() {
        let w = generate_billing(&BillingConfig::default());
        assert!(w.extended_key.unique_in(&w.universe));
    }

    #[test]
    fn no_common_candidate_key() {
        let w = generate_billing(&BillingConfig::default());
        // Keys are phone vs account — disjoint attribute sets.
        assert_eq!(w.local.schema().primary_key()[0].as_str(), "phone");
        assert_eq!(w.long_dist.schema().primary_key()[0].as_str(), "account");
    }

    #[test]
    fn full_coverage_matches_soundly_with_full_recall() {
        let w = generate_billing(&BillingConfig::default());
        let outcome = EntityMatcher::new(
            w.local.clone(),
            w.long_dist.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        )
        .unwrap()
        .run()
        .unwrap();
        outcome.verify().unwrap();
        let e = Evaluation::compute(
            &w.truth,
            &outcome.matching,
            &outcome.negative,
            w.local.len() * w.long_dist.len(),
        );
        assert!(e.is_sound(), "{e:?}");
        assert_eq!(e.match_recall(), 1.0, "{e:?}");
        assert!(!w.truth.is_empty(), "workload must have overlap");
    }

    #[test]
    fn partial_coverage_stays_sound() {
        let w = generate_billing(&BillingConfig {
            ilfd_coverage: 0.4,
            ..BillingConfig::default()
        });
        let outcome = EntityMatcher::new(
            w.local.clone(),
            w.long_dist.clone(),
            MatchConfig::new(w.extended_key.clone(), w.ilfds.clone()),
        )
        .unwrap()
        .run()
        .unwrap();
        let e = Evaluation::compute(
            &w.truth,
            &outcome.matching,
            &outcome.negative,
            w.local.len() * w.long_dist.len(),
        );
        assert!(e.is_sound(), "{e:?}");
        assert!(e.match_recall() < 1.0, "{e:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_billing(&BillingConfig::default());
        let b = generate_billing(&BillingConfig::default());
        assert!(a.local.same_tuples(&b.local));
        assert!(a.long_dist.same_tuples(&b.long_dist));
    }

    #[test]
    fn customers_repeat_across_regions() {
        let w = generate_billing(&BillingConfig {
            n_lines: 150,
            n_customers: 30,
            ..BillingConfig::default()
        });
        let customers: Vec<&str> = w
            .universe
            .iter()
            .map(|t| t.get(0).as_str().unwrap())
            .collect();
        let distinct: std::collections::HashSet<_> = customers.iter().collect();
        assert!(distinct.len() < customers.len());
    }
}
