//! # `eid-datagen` — workloads for entity identification
//!
//! Two kinds of input for the engine and the experiments:
//!
//! * [`restaurant`] — the paper's exact fixtures: Example 1
//!   (Table 1), Figure 2, Example 2 (Table 2), Example 3 (Table 5)
//!   with ILFDs I1–I8 and the derived I9;
//! * [`generator`] — a synthetic integrated-world simulator with
//!   ground truth: configurable entity count, database overlap,
//!   instance-level homonym rate, ILFD coverage, and attribute-value
//!   noise. Used by the scaling and technique-comparison experiments.
//! * [`vocab`] — deterministic pronounceable-word pools behind the
//!   generator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod billing;
pub mod generator;
pub mod io;
pub mod restaurant;
pub mod vocab;

pub use billing::{generate_billing, BillingConfig, BillingWorkload};
pub use generator::{generate, GeneratorConfig, Workload};
pub use io::{export_workload, import_workload, ImportedWorkload};
