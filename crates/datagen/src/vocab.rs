//! Deterministic synthetic vocabularies.
//!
//! Workload generation needs pools of plausible symbolic values —
//! restaurant names, street names, cuisine/speciality words — that
//! are reproducible from a seed. Words are composed from syllables,
//! optionally suffixed with an index to force uniqueness.

use rand::rngs::StdRng;
use rand::RngExt;

const ONSETS: &[&str] = &[
    "b", "ch", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "sh", "t", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "k", "ng"];

/// Generates one pronounceable word of `syllables` syllables.
pub fn word(rng: &mut StdRng, syllables: usize) -> String {
    let mut out = String::new();
    for _ in 0..syllables {
        out.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        out.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
        if rng.random_bool(0.3) {
            out.push_str(CODAS[rng.random_range(0..CODAS.len())]);
        }
    }
    out
}

/// A pool of `n` distinct words; duplicates are disambiguated with a
/// numeric suffix so the pool size is exact.
pub fn pool(rng: &mut StdRng, n: usize, syllables: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while out.len() < n {
        let mut w = word(rng, syllables);
        if !seen.insert(w.clone()) {
            w = format!("{w}{}", out.len());
            seen.insert(w.clone());
        }
        out.push(w);
    }
    out
}

/// A pool of street-like names (`<word>_ave`, `<word>_rd`, …).
pub fn street_pool(rng: &mut StdRng, n: usize) -> Vec<String> {
    const SUFFIX: &[&str] = &["ave", "rd", "st", "blvd", "way"];
    pool(rng, n, 2)
        .into_iter()
        .enumerate()
        .map(|(i, w)| format!("{w}_{}", SUFFIX[i % SUFFIX.len()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(word(&mut a, 3), word(&mut b, 3));
    }

    #[test]
    fn pool_is_exact_and_distinct() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = pool(&mut rng, 500, 2);
        assert_eq!(p.len(), 500);
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn street_pool_has_suffixes() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = street_pool(&mut rng, 10);
        assert!(p.iter().all(|s| s.contains('_')));
    }

    #[test]
    fn words_are_nonempty_lowercase() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = word(&mut rng, 2);
            assert!(!w.is_empty());
            assert_eq!(w, w.to_lowercase());
        }
    }
}
