#!/usr/bin/env bash
# Full local gate: release build, tests, lints, formatting.
#
# clippy and rustfmt run only when their components are installed, so
# the script works on minimal toolchains (the build and tests are
# always mandatory).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# First-party packages only: the vendored stubs under vendor/ stand in
# for external dependencies and are not held to the lint/format gate.
PACKAGES=(entity-id eid-relational eid-ilfd eid-rules eid-core \
          eid-baselines eid-datagen eid-bench)
PKG_FLAGS=()
for p in "${PACKAGES[@]}"; do PKG_FLAGS+=(-p "$p"); done

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy "${PKG_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt "${PKG_FLAGS[@]}" --check
else
    echo "==> rustfmt not installed; skipping"
fi

echo "==> all checks passed"
