#!/usr/bin/env bash
# Full local gate: release build, tests, lints, formatting.
#
# clippy and rustfmt run only when their components are installed, so
# the script works on minimal toolchains (the build and tests are
# always mandatory).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# First-party packages only: the vendored stubs under vendor/ stand in
# for external dependencies and are not held to the lint/format gate.
PACKAGES=(entity-id eid-relational eid-ilfd eid-rules eid-obs eid-core \
          eid-baselines eid-datagen eid-bench eid-fault)
PKG_FLAGS=()
for p in "${PACKAGES[@]}"; do PKG_FLAGS+=(-p "$p"); done

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${PKG_FLAGS[@]}"

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy "${PKG_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt "${PKG_FLAGS[@]}" --check
else
    echo "==> rustfmt not installed; skipping"
fi

# Observability smoke: a real CLI run on a sound world (the stock
# example minus its intentionally-unsound sichuan row) must emit a
# parseable report whose soundness counters read zero — no pair in
# both tables (classify/overlap), no §3.3 monotonicity violations —
# and whose blocking/classification ledgers sum correctly.
if command -v python3 >/dev/null 2>&1; then
    echo "==> eid match --report-json smoke"
    report="$(mktemp)" s_sound="$(mktemp)" bench_out="$(mktemp)" plan_out="$(mktemp)"
    trap 'rm -f "$report" "$s_sound" "$bench_out" "$plan_out"' EXIT
    grep -v sichuan examples/data/s.csv > "$s_sound"
    ./target/release/eid match \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --negative --report-json "$report" >/dev/null
    python3 - "$report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
counters = {c["name"]: c["value"] for c in report["counters"]}
stages = {s["path"] for s in report["stages"]}
assert counters["classify/overlap"] == 0, counters
assert counters.get("incremental/monotonicity_violations", 0) == 0, counters
assert counters["block/candidates"] == \
    counters["block/accepted"] + counters["block/rejected"], counters
assert counters["classify/mt"] + counters["classify/nmt"] \
    + counters["classify/undetermined"] \
    == counters["classify/pairs_total"] + counters["classify/overlap"], counters
assert {"match", "match/derive", "match/engine"} <= stages, stages
print(f"    report OK: {len(counters)} counters, {len(stages)} stages")
EOF
    # Plan-explain smoke: `eid plan` must print the cost model's
    # choices without executing, and the --json form must be a
    # well-shaped plan (every node carries id/kind/label/why/span,
    # at least one probed identity rule names its blocking key).
    echo "==> eid plan --explain smoke"
    ./target/release/eid plan \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --explain | grep -q '^match plan — arm ' \
        || { echo "eid plan text tree missing header"; exit 1; }
    ./target/release/eid plan \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --json > "$plan_out"
    python3 - "$plan_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    plan = json.load(f)
for key in ("arm", "mode", "mode_why", "workers", "index_free", "nodes"):
    assert key in plan, f"plan JSON missing {key!r}"
kinds = [n["kind"] for n in plan["nodes"]]
for kind in ("derive", "encode", "block", "identity-probe", "dedup", "classify"):
    assert kind in kinds, f"plan has no {kind!r} node: {kinds}"
for n in plan["nodes"]:
    for field in ("id", "kind", "label", "why", "span", "inputs"):
        assert field in n, f"node {n} missing {field!r}"
probes = [n for n in plan["nodes"]
          if n["kind"] == "identity-probe" and n["strategy"] == "probe"]
assert probes, "no probed identity rule in the plan"
assert all(n["key_positions"] for n in probes), probes
assert any("blocking key" in n["why"] for n in probes), probes
print(f"    plan OK: {len(plan['nodes'])} nodes, arm {plan['arm']}, "
      f"mode {plan['mode']}")
EOF
    # Trace smoke: a traced run must write valid Chrome trace_event
    # JSON (balanced B/E per worker track, plan-span slice names) and
    # must classify identically to the untraced run — tracing is an
    # observer, never a participant.
    echo "==> eid match --trace-out smoke"
    trace_out="$(mktemp)" rep_traced="$(mktemp)"
    ./target/release/eid match \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --trace-out "$trace_out" --report-json "$rep_traced" >/dev/null
    python3 - "$trace_out" "$rep_traced" "$report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "empty trace"
depth = {}
names = set()
for e in events:
    if e["ph"] == "B":
        depth[e["tid"]] = depth.get(e["tid"], 0) + 1
        names.add(e["name"])
    elif e["ph"] == "E":
        depth[e["tid"]] = depth[e["tid"]] - 1
        assert depth[e["tid"]] >= 0, f"E before B on tid {e['tid']}"
assert all(d == 0 for d in depth.values()), f"unbalanced B/E: {depth}"
assert any(n.startswith("match/engine/") for n in names), names
with open(sys.argv[2]) as f:
    traced = {c["name"]: c["value"] for c in json.load(f)["counters"]}
with open(sys.argv[3]) as f:
    plain = {c["name"]: c["value"] for c in json.load(f)["counters"]}
for key in ("classify/mt", "classify/nmt", "classify/undetermined",
            "classify/overlap", "block/candidates", "block/accepted"):
    assert traced.get(key) == plain.get(key), \
        f"tracing changed {key}: {traced.get(key)} != {plain.get(key)}"
slices = sum(1 for e in events if e["ph"] == "B")
print(f"    trace OK: {slices} slices over {len(depth)} worker track(s), "
      f"classification identical to untraced run")
EOF
    # EXPLAIN ANALYZE smoke: --analyze executes the plan and joins
    # estimates with per-node actuals; the text form carries the
    # columns and drift footer, the JSON form the per-node documents.
    echo "==> eid plan --analyze smoke"
    ./target/release/eid plan \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --analyze > "$plan_out"
    grep -q '(analyzed)' "$plan_out" || { echo "--analyze missing header"; exit 1; }
    grep -q 'est pairs' "$plan_out" || { echo "--analyze missing columns"; exit 1; }
    grep -q '^  drift: ' "$plan_out" || { echo "--analyze missing drift footer"; exit 1; }
    ./target/release/eid plan \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --analyze --json > "$plan_out"
    python3 - "$plan_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert "plan" in doc and "analyze" in doc, list(doc)
nodes = doc["analyze"]["nodes"]
assert len(nodes) == len(doc["plan"]["nodes"]), "analyze/plan node mismatch"
executed = [n for n in nodes if n["executed"]]
assert executed, "no node executed"
assert all("est_pairs" in n and "pairs" in n and "nanos" in n for n in nodes)
assert doc["analyze"]["drift_nodes"] == sum(n["drift"] for n in nodes)
print(f"    analyze OK: {len(nodes)} nodes, {len(executed)} executed, "
      f"drift {doc['analyze']['drift_nodes']}")
EOF
    rm -f "$trace_out" "$rep_traced"
else
    echo "==> python3 not installed; skipping --report-json smoke"
fi

# Fault-matrix smoke: the deterministic degradation ladder. The
# injection harness is compiled out of release builds, so this runs
# the debug test binary — every rung (worker panic -> serial rerun ->
# nested loop -> typed error) plus the budget trips.
echo "==> fault-matrix smoke (tests/fault_matrix.rs)"
cargo test -q -p entity-id --test fault_matrix

# Chaos smoke: fixed multi-fault spill schedules — transient
# open/write/read failures that retry with backoff, retry exhaustion
# that latches containment or drops the emission rung, and a budget
# that must degrade to out-of-core instead of aborting (plus its
# --no-spill inverse). Every schedule must land a byte-identical
# table or a typed error, with no leaked spill files. The injection
# harness is compiled out of release builds, so this runs the debug
# test binary.
echo "==> chaos smoke (tests/chaos_props.rs, fixed schedules)"
cargo test -q -p entity-id --test chaos_props -- \
    spill_io_faults_recover_or_degrade_a_rung \
    no_spill_restores_abort_as_the_final_rung

# Budget trips must stay typed in *release* too: distinct exit codes,
# never a panic, and the report is still written on abort.
echo "==> release budget-abort smoke (exit codes 124/125)"
abort_report="$(mktemp)"
rc=0
./target/release/eid match \
    --r examples/data/r.csv --r-key name,street \
    --s examples/data/s.csv --s-key name,speciality,county \
    --rules examples/data/knowledge.rules --key name,cuisine \
    --timeout-ms 0 --report-json "$abort_report" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 124 ] || { echo "expected exit 124 for --timeout-ms 0, got $rc"; exit 1; }
grep -q '"abort"' "$abort_report" || { echo "abort report missing abort label"; exit 1; }
rc=0
./target/release/eid match \
    --r examples/data/r.csv --r-key name,street \
    --s examples/data/s.csv --s-key name,speciality,county \
    --rules examples/data/knowledge.rules --key name,cuisine \
    --max-pairs 1 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 125 ] || { echo "expected exit 125 for --max-pairs 1, got $rc"; exit 1; }
rm -f "$abort_report"
echo "    budget aborts OK: 124/125 with abort-labelled report"

# Benchmark smoke at small n: every engine must agree with the
# nested-loop oracle on MT/NMT/undetermined (the binary itself
# asserts this before writing), and the blocked arms' convert step
# must cost less than the engine step at the largest smoke size —
# the invariant the interned/columnar pipeline exists to hold.
if command -v python3 >/dev/null 2>&1; then
    echo "==> bench_json smoke (n=100,200)"
    ./target/release/bench_json 100 200 --out "$bench_out" >/dev/null
    python3 - "$bench_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
largest = max(bench["sizes"], key=lambda s: s["n_entities"])
engines = {e["name"]: e for e in largest["engines"]}
oracle = engines["nested_loop"]
for name, e in engines.items():
    agree = (e["matching"], e["negative"], e["undetermined"])
    want = (oracle["matching"], oracle["negative"], oracle["undetermined"])
    assert agree == want, f"{name}: {agree} != oracle {want}"
    # Planner decisions ride along: mode, blocking keys, and a plan
    # cache that misses exactly once then hits on every rep.
    plan = e["plan"]
    assert plan["mode"], f"{name}: empty plan mode"
    assert plan["cache_misses"] == 1, f"{name}: {plan}"
    assert plan["cache_hits"] >= 1, f"{name}: {plan}"
assert engines["blocked"]["plan"]["keys"], "blocked arm chose no blocking key"
for name in ("blocked", "blocked_parallel"):
    stages = engines[name]["stages"]
    convert, engine = stages["match/convert"], stages["match/engine"]
    assert convert < engine, \
        f"{name}: convert {convert}s >= engine {engine}s at n={largest['n_entities']}"
# Panic isolation must not tax the fault-free path: the parallel arm
# may not fall behind the serial blocked arm by more than tolerance
# (it falls back to the serial path below the parallelism threshold,
# so at smoke sizes the two should be near-identical).
par, ser = engines["blocked_parallel"]["pairs_per_sec"], engines["blocked"]["pairs_per_sec"]
assert par >= 0.75 * ser, \
    f"blocked_parallel {par:.0f} pairs/s < 75% of blocked {ser:.0f} at n={largest['n_entities']}"
print(f"    bench OK: engines agree; convert < engine at n={largest['n_entities']}")
EOF
    # Kernel smoke at a vectorizing size: the blocked arm with
    # kernels forced on and forced off must produce identical
    # classification counts, and the on-run must actually take the
    # vectorized path (kernel/batches > 0) — a silent scalar
    # fallback would keep the counts honest while voiding the perf
    # claim this PR makes.
    echo "==> kernel smoke (n=1600, kernels on vs off)"
    kern_on="$(mktemp)" kern_off="$(mktemp)"
    ./target/release/bench_json 1600 --engines blocked \
        --kernels on --out "$kern_on" >/dev/null
    ./target/release/bench_json 1600 --engines blocked \
        --kernels off --out "$kern_off" >/dev/null
    python3 - "$kern_on" "$kern_off" <<'EOF'
import json, sys
def arm(path):
    with open(path) as f:
        bench = json.load(f)
    size = bench["sizes"][0]
    return {e["name"]: e for e in size["engines"]}["blocked"]
on, off = arm(sys.argv[1]), arm(sys.argv[2])
for key in ("matching", "negative", "undetermined"):
    assert on[key] == off[key], \
        f"kernels changed {key}: on={on[key]} off={off[key]}"
batches = on["counters"].get("kernel/batches", 0)
assert batches > 0, f"kernels-on run never entered a kernel: {on['counters']}"
assert off["counters"].get("kernel/batches", 0) == 0, \
    "kernels-off run still tallied kernel batches"
print(f"    kernel OK: counts identical; {batches} batches, "
      f"{on['counters'].get('kernel/lanes_used', 0)} lanes on")
EOF
    rm -f "$kern_on" "$kern_off"
    # Sink smoke: forced streamed vs forced buffered emission must
    # classify identically (same MT/NMT/undetermined), the streamed
    # run must actually engage the sharded sinks (sink/* counters),
    # and the buffered run must not.
    echo "==> sink smoke (n=800, emit streamed vs buffered)"
    sink_s="$(mktemp)" sink_b="$(mktemp)"
    ./target/release/bench_json 800 --engines blocked \
        --emit streamed --out "$sink_s" >/dev/null
    ./target/release/bench_json 800 --engines blocked \
        --emit buffered --out "$sink_b" >/dev/null
    python3 - "$sink_s" "$sink_b" <<'EOF'
import json, sys
def arm(path):
    with open(path) as f:
        bench = json.load(f)
    size = bench["sizes"][0]
    return size, {e["name"]: e for e in size["engines"]}["blocked"]
(size_s, streamed), (size_b, buffered) = arm(sys.argv[1]), arm(sys.argv[2])
for key in ("matching", "negative", "undetermined"):
    assert streamed[key] == buffered[key], \
        f"emission mode changed {key}: streamed={streamed[key]} buffered={buffered[key]}"
assert streamed["plan"]["emit"].startswith("streamed"), streamed["plan"]["emit"]
assert buffered["plan"]["emit"].startswith("buffered"), buffered["plan"]["emit"]
shards = streamed["counters"].get("sink/shards", 0)
assert shards >= 1, f"streamed run recorded no sink shards: {streamed['counters']}"
assert "sink/shards" not in buffered["counters"], \
    "buffered run tallied sink counters"
assert size_s["emit"]["ab_identical"] and size_b["emit"]["ab_identical"]
print(f"    sink OK: counts identical; {shards} shard(s), "
      f"{streamed['counters'].get('sink/bytes', 0)} sink bytes streamed")
EOF
    rm -f "$sink_s" "$sink_b"
    # Streaming perf gate: at n=3200 the blocked arm must resolve to
    # streamed emission on its own (auto), classify exactly the known
    # workload counts, and convert must come in under the buffered
    # baseline's 0.020943 s — the regression tripwire for the
    # fold-emission-dedup-convert-into-one-pass claim.
    echo "==> streaming perf gate (n=3200)"
    sink_l="$(mktemp)"
    ./target/release/bench_json 3200 --engines blocked --out "$sink_l" >/dev/null
    python3 - "$sink_l" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
size = bench["sizes"][0]
blocked = {e["name"]: e for e in size["engines"]}["blocked"]
assert blocked["plan"]["emit"].startswith("streamed"), \
    f"n=3200 did not auto-stream: {blocked['plan']['emit']}"
assert (blocked["matching"], blocked["negative"]) == (1595, 5164412), \
    f"classification drifted: {blocked['matching']}/{blocked['negative']}"
convert = blocked["stages"]["match/convert"]
assert convert < 0.020943, \
    f"streamed convert {convert}s not under buffered baseline 0.020943s"
print(f"    perf gate OK: auto-streamed, convert {convert*1e3:.2f} ms, "
      f"{blocked['seconds']*1e3:.2f} ms total")
EOF
    # Release spill smoke, from the same bench run: under a 32 MiB
    # pair-byte budget the n=3200 run must *plan* spilled emission and
    # complete with counts identical to the unbudgeted arm (the bench
    # binary asserts agreement before writing), and the forced-spill
    # arm must move real segment bytes through the spill files. A
    # budget that aborts — or spilled counts that drift — fail here.
    echo "==> release spill smoke (n=3200, --max-mem-mb 32 equivalent)"
    python3 - "$sink_l" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
spill = bench["spill"]
assert spill["n_entities"] == 3200, spill
assert spill["budget_bytes"] == 32 * 1024 * 1024, spill
assert spill["ab_identical"], "spilled counts drifted from streamed"
assert spill["spill_bytes"] > 0, f"forced-spill arm wrote no segments: {spill}"
assert spill["spill_segments"] > 0, spill
print(f"    spill smoke OK: budgeted spilled {spill['spilled_seconds']*1e3:.2f} ms "
      f"vs streamed {spill['streamed_seconds']*1e3:.2f} ms; forced spill moved "
      f"{spill['spill_bytes']} bytes in {spill['spill_segments']} segments")
EOF
    # Store rung of the same n=3200 bench run: the three arms
    # (re-encode, warm RAM, cold open) agreed before the JSON was
    # written; here assert the economics — reopening the persisted
    # store must be cheaper than re-encoding it (the hard < 5% bound
    # is asserted inside bench_json itself at n >= 6400).
    echo "==> store rung smoke (n=3200, cold open vs re-encode)"
    python3 - "$sink_l" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
store = bench["store"]
assert store["ab_identical"], "store-backed counts drifted from the re-encode path"
assert store["stats_source_cold"] == "persisted", store
assert store["open_ms"] < store["encode_ms"], \
    f"cold open {store['open_ms']:.2f} ms not under encode {store['encode_ms']:.2f} ms"
print(f"    store rung OK: encode {store['encode_ms']:.2f} ms, "
      f"open {store['open_ms']:.2f} ms ({store['open_pct_of_encode']:.1f}%), "
      f"{store['store_bytes']} bytes on disk")
EOF
    rm -f "$sink_l"
    # Dataset-store CLI smoke: encode the example world once, then
    # match from the store — stdout must be byte-identical to the CSV
    # path (same tables, same message, same partition), the reopened
    # plan must read persisted statistics, and a truncated store file
    # must exit 65 (EX_DATAERR), never a panic or a partial answer.
    echo "==> dataset-store CLI smoke (encode/match --store/corruption)"
    store_dir="$(mktemp -d)" csv_out="$(mktemp)" store_out="$(mktemp)"
    ./target/release/eid encode \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --out "$store_dir/world.eids" >/dev/null
    ./target/release/eid match \
        --r examples/data/r.csv --r-key name,street \
        --s "$s_sound" --s-key name,speciality,county \
        --rules examples/data/knowledge.rules --key name,cuisine \
        --negative > "$csv_out"
    ./target/release/eid match --store "$store_dir/world.eids" --negative > "$store_out"
    diff "$csv_out" "$store_out" \
        || { echo "store-backed match differs from the CSV path"; exit 1; }
    ./target/release/eid plan --store "$store_dir/world.eids" \
        | grep -q '^  stats: persisted$' \
        || { echo "store-backed plan missing persisted stats provenance"; exit 1; }
    ./target/release/eid inspect --store "$store_dir/world.eids" \
        | grep -q 'blocking index: ' \
        || { echo "eid inspect missing index line"; exit 1; }
    mv "$store_dir/world.eids/stats.eid" "$store_dir/stats.bak"
    head -c 10 "$store_dir/stats.bak" > "$store_dir/world.eids/stats.eid"
    rc=0
    ./target/release/eid match --store "$store_dir/world.eids" >/dev/null 2>&1 || rc=$?
    [ "$rc" -eq 65 ] || { echo "expected exit 65 for truncated store, got $rc"; exit 1; }
    rm -rf "$store_dir" "$csv_out" "$store_out"
    echo "    store CLI OK: store-backed match byte-identical; corrupt store exits 65"
else
    echo "==> python3 not installed; skipping bench smoke"
fi

echo "==> all checks passed"
